package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/mesh"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/pkg/api"
)

// Parameter bounds enforced at submission.  They keep a single job inside
// the paper's domain (censuses up to the 512×512×512 coverage sweep) and
// keep checkpoint aggregates small enough to rewrite every few chunks.
const (
	maxCensusN    = 9
	maxEpsilonN   = 9
	maxSweepDims  = 6
	maxSweepAxis  = 512
	maxSweepNodes = 1 << 22
)

// kindRunner is one job kind's execution engine.  The manager drives it
// chunk by chunk: chunks execute sequentially in index order (parallelism
// lives inside a chunk), which is what makes the record stream and the
// running aggregate deterministic and therefore checkpointable.
//
// Implementations must mutate their running aggregate only after all
// fallible work of the chunk has succeeded, so a panicked or cancelled
// attempt leaves the aggregate exactly as it was and the chunk can be
// retried or resumed without double counting.
type kindRunner interface {
	// chunks returns the fixed number of chunks.
	chunks() int
	// runChunk appends the chunk's NDJSON records to buf and returns the
	// number of shapes it processed.
	runChunk(ctx context.Context, chunk int, buf *bytes.Buffer) (uint64, error)
	// finish appends the final records (cumulative rows, summary) after the
	// last chunk; shapes is the job-wide shape count.
	finish(buf *bytes.Buffer, shapes uint64) error
	// snapshot and restore round-trip the running aggregate through a
	// checkpoint.  snapshot may return nil for stateless kinds.
	snapshot() (json.RawMessage, error)
	restore(agg json.RawMessage) error
}

// runnerCloser is implemented by runners holding resources (the plancensus
// artifact builder); the manager closes them when a run stops for any
// reason other than a clean finish.
type runnerCloser interface {
	close()
}

// buildRunner validates a submission and constructs its runner.  Validation
// failures wrap ErrBadRequest so the API layer can map them to 400s.  dir
// is the job's data directory — empty at submission time, when buildRunner
// runs for validation only, so runners must touch it lazily.
func buildRunner(req *api.JobSubmitRequest, workers int, planner *core.Planner, dir string) (kindRunner, error) {
	switch req.Kind {
	case api.JobCensus:
		p := req.Census
		if p == nil {
			return nil, fmt.Errorf("%w: kind %q requires the census parameter block", ErrBadRequest, req.Kind)
		}
		if p.MaxN < 1 || p.MaxN > maxCensusN {
			return nil, fmt.Errorf("%w: census max_n must be 1..%d, got %d", ErrBadRequest, maxCensusN, p.MaxN)
		}
		return &censusRunner{maxN: p.MaxN, workers: workers}, nil
	case api.JobEpsilon:
		p := req.Epsilon
		if p == nil {
			return nil, fmt.Errorf("%w: kind %q requires the epsilon parameter block", ErrBadRequest, req.Kind)
		}
		if p.MaxN < 1 || p.MaxN > maxEpsilonN {
			return nil, fmt.Errorf("%w: epsilon max_n must be 1..%d, got %d", ErrBadRequest, maxEpsilonN, p.MaxN)
		}
		return &epsilonRunner{maxN: p.MaxN, workers: workers}, nil
	case api.JobPlanSweep:
		p := req.PlanSweep
		if p == nil {
			return nil, fmt.Errorf("%w: kind %q requires the plansweep parameter block", ErrBadRequest, req.Kind)
		}
		if p.Dims < 1 || p.Dims > maxSweepDims {
			return nil, fmt.Errorf("%w: plansweep dims must be 1..%d, got %d", ErrBadRequest, maxSweepDims, p.Dims)
		}
		if p.MaxAxis < 1 || p.MaxAxis > maxSweepAxis {
			return nil, fmt.Errorf("%w: plansweep max_axis must be 1..%d, got %d", ErrBadRequest, maxSweepAxis, p.MaxAxis)
		}
		if p.MaxNodes < 1 || p.MaxNodes > maxSweepNodes {
			return nil, fmt.Errorf("%w: plansweep max_nodes must be 1..%d, got %d", ErrBadRequest, maxSweepNodes, p.MaxNodes)
		}
		fam, err := guest.ByName(p.Family)
		if err != nil {
			return nil, fmt.Errorf("%w: plansweep %v", ErrBadRequest, err)
		}
		return &plansweepRunner{
			params:  *p,
			family:  fam.Family,
			workers: workers,
			planner: planner,
			hist:    map[string]uint64{},
		}, nil
	case api.JobPlanCensus:
		p := req.PlanCensus
		if p == nil {
			return nil, fmt.Errorf("%w: kind %q requires the plancensus parameter block", ErrBadRequest, req.Kind)
		}
		if p.Dims < 1 || p.Dims > maxSweepDims {
			return nil, fmt.Errorf("%w: plancensus dims must be 1..%d, got %d", ErrBadRequest, maxSweepDims, p.Dims)
		}
		if p.MaxAxis < 1 || p.MaxAxis > maxSweepAxis {
			return nil, fmt.Errorf("%w: plancensus max_axis must be 1..%d, got %d", ErrBadRequest, maxSweepAxis, p.MaxAxis)
		}
		if total := artifact.TotalRecords(p.Dims, p.MaxAxis); total > artifact.MaxRecords {
			return nil, fmt.Errorf("%w: plancensus dims=%d max_axis=%d spans %d records (cap %d)",
				ErrBadRequest, p.Dims, p.MaxAxis, total, artifact.MaxRecords)
		}
		fam, err := guest.ByName(p.Family)
		if err != nil {
			return nil, fmt.Errorf("%w: plancensus %v", ErrBadRequest, err)
		}
		if fam.Family != guest.Mesh && fam.Family != guest.Torus {
			return nil, fmt.Errorf("%w: plancensus covers the rank-indexable families mesh and torus, not %q",
				ErrBadRequest, fam.Family)
		}
		return &plancensusRunner{
			params:  *p,
			family:  fam.Family,
			planner: planner,
			dir:     dir,
			hist:    map[string]uint64{},
		}, nil
	default:
		return nil, fmt.Errorf("%w: unknown job kind %q", ErrBadRequest, req.Kind)
	}
}

// writeRecord appends one NDJSON line.
func writeRecord(buf *bytes.Buffer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf.Write(b)
	buf.WriteByte('\n')
	return nil
}

// censusRunner runs the Figure 2 coverage census.  One chunk per first axis
// a = 1..2^maxN; the aggregate is the per-bucket integer tally the
// cumulative rows are rendered from.
type censusRunner struct {
	maxN    int
	workers int
	agg     []stats.CensusTally
}

func (r *censusRunner) chunks() int { return 1 << uint(r.maxN) }

func (r *censusRunner) runChunk(ctx context.Context, chunk int, buf *bytes.Buffer) (uint64, error) {
	a := chunk + 1
	part, err := stats.CensusShard(ctx, a, r.maxN, r.workers)
	if err != nil {
		return 0, err
	}
	rec := api.CensusShardRecord{Type: api.RecordCensusShard, A: a}
	var shapes uint64
	for n, t := range part {
		if t.Total == 0 {
			continue
		}
		rec.Buckets = append(rec.Buckets, api.CensusBucket{N: n, Count: t.Count, Eps2: t.Eps2, Total: t.Total})
		shapes += t.Total
	}
	if err := writeRecord(buf, rec); err != nil {
		return 0, err
	}
	r.agg = stats.MergeCensusTallies(r.agg, part)
	return shapes, nil
}

func (r *censusRunner) finish(buf *bytes.Buffer, shapes uint64) error {
	rows := stats.CensusRows(r.maxN, r.agg)
	for _, row := range rows {
		rec := api.CensusRowRecord{
			Type: api.RecordCensusRow, N: row.N, S: row.S, S4Eps2: row.S4Eps2,
			Total: row.Total, Exceptions: row.Exceptions,
			// The method-1 stratum is exactly the Gray-minimal shapes,
			// whose plans achieve dilation 1 — the unconditional floor —
			// so S[0] is the certified-dilation-optimal percentage.
			CertOptimalPct: row.S[0],
		}
		if err := writeRecord(buf, rec); err != nil {
			return err
		}
	}
	return writeRecord(buf, api.SummaryRecord{
		Type: api.RecordSummary, Schema: api.JobSchemaVersion, Kind: api.JobCensus,
		Chunks: r.chunks(), Shapes: shapes, Exceptions: rows[len(rows)-1].Exceptions,
	})
}

func (r *censusRunner) snapshot() (json.RawMessage, error) { return json.Marshal(r.agg) }

func (r *censusRunner) restore(agg json.RawMessage) error {
	var t []stats.CensusTally
	if err := json.Unmarshal(agg, &t); err != nil {
		return err
	}
	if len(t) != r.maxN+1 {
		return fmt.Errorf("jobs: census checkpoint has %d buckets, want %d", len(t), r.maxN+1)
	}
	r.agg = t
	return nil
}

// epsilonRunner runs the ε-distribution table, one chunk (and one record)
// per domain exponent.  Rows are independent, so there is no aggregate.
type epsilonRunner struct {
	maxN    int
	workers int
}

func (r *epsilonRunner) chunks() int { return r.maxN }

func (r *epsilonRunner) runChunk(ctx context.Context, chunk int, buf *bytes.Buffer) (uint64, error) {
	n := chunk + 1
	d, err := stats.Figure2EpsilonCtx(ctx, n, r.workers)
	if err != nil {
		return 0, err
	}
	rec := api.EpsilonRowRecord{
		Type: api.RecordEpsilonRow, N: n,
		Eps1: d.Eps1, Eps2: d.Eps2, Eps4: d.Eps4, EpsWorse: d.EpsWorse,
	}
	if err := writeRecord(buf, rec); err != nil {
		return 0, err
	}
	return uint64(1) << uint(3*n), nil // ordered triples in the 2^n domain
}

func (r *epsilonRunner) finish(buf *bytes.Buffer, shapes uint64) error {
	return writeRecord(buf, api.SummaryRecord{
		Type: api.RecordSummary, Schema: api.JobSchemaVersion, Kind: api.JobEpsilon,
		Chunks: r.maxN, Shapes: shapes,
	})
}

func (r *epsilonRunner) snapshot() (json.RawMessage, error) { return nil, nil }
func (r *epsilonRunner) restore(json.RawMessage) error      { return nil }

// plansweepRunner plans every canonical guest shape of the family in range,
// one chunk per first axis (core.FamilyShapesFrom), one record per shape in
// enumeration order.  The aggregate is the dilation histogram and
// minimal-cube count of the summary line.
type plansweepRunner struct {
	params  api.PlanSweepParams
	family  guest.Family
	workers int
	planner *core.Planner
	hist    map[string]uint64
	minimal uint64
	optimal uint64
}

func (r *plansweepRunner) chunks() int { return r.params.MaxAxis }

func (r *plansweepRunner) runChunk(ctx context.Context, chunk int, buf *bytes.Buffer) (uint64, error) {
	p := r.params
	shapes := core.FamilyShapesFrom(r.family, chunk+1, p.Dims, p.MaxAxis, p.MaxNodes)
	if len(shapes) == 0 {
		return 0, nil
	}
	recs, err := sweep.FoldCtx(ctx, len(shapes), r.workers,
		func(i int) api.PlanRecord { return r.planRecord(shapes[i]) },
		make([]api.PlanRecord, 0, len(shapes)),
		func(acc []api.PlanRecord, rec api.PlanRecord) []api.PlanRecord { return append(acc, rec) })
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		if err := writeRecord(buf, rec); err != nil {
			return 0, err
		}
	}
	for _, rec := range recs {
		key := "unknown"
		if rec.DilationBound >= 0 {
			key = strconv.Itoa(rec.DilationBound)
		}
		r.hist[key]++
		if rec.Minimal {
			r.minimal++
		}
		if rec.Optimal {
			r.optimal++
		}
	}
	return uint64(len(shapes)), nil
}

func (r *plansweepRunner) planRecord(s mesh.Shape) api.PlanRecord {
	p := r.planner.PlanGuest(r.family, s)
	dil := p.Dilation
	if dil == core.DilationUnknown {
		dil = -1
	}
	fam := ""
	if r.family != guest.Mesh {
		fam = r.family.String()
	}
	rec := api.PlanRecord{
		Type: api.RecordPlan, Shape: s.String(), Family: fam, Nodes: s.Nodes(),
		CubeDim: p.CubeDim, Plan: p.String(), Method: p.Method,
		DilationBound: dil, Minimal: p.Minimal(),
	}
	if r.family == guest.Mesh && len(s) == 3 {
		rec.BestMethod = stats.BestMethod(s[0], s[1], s[2])
		e := stats.RelExpansion(s[0], s[1], s[2])
		rec.RelExpansion = e[:]
	}
	b, gap, opt := core.PlanCertificate(r.family, s, p)
	rec.LowerBounds = &api.LowerBounds{Dilation: b.Dilation, Wirelength: b.Wirelength, Congestion: b.Congestion}
	rec.GapToOptimal = gap
	rec.Optimal = opt
	return rec
}

func (r *plansweepRunner) finish(buf *bytes.Buffer, shapes uint64) error {
	rec := api.SummaryRecord{
		Type: api.RecordSummary, Schema: api.JobSchemaVersion, Kind: api.JobPlanSweep,
		Chunks: r.chunks(), Shapes: shapes, Minimal: r.minimal, Optimal: r.optimal,
	}
	if len(r.hist) > 0 {
		rec.DilationHist = r.hist
	}
	return writeRecord(buf, rec)
}

type plansweepAgg struct {
	Hist    map[string]uint64 `json:"hist"`
	Minimal uint64            `json:"minimal"`
	Optimal uint64            `json:"optimal"`
}

func (r *plansweepRunner) snapshot() (json.RawMessage, error) {
	return json.Marshal(plansweepAgg{Hist: r.hist, Minimal: r.minimal, Optimal: r.optimal})
}

func (r *plansweepRunner) restore(agg json.RawMessage) error {
	var a plansweepAgg
	if err := json.Unmarshal(agg, &a); err != nil {
		return err
	}
	if a.Hist == nil {
		a.Hist = map[string]uint64{}
	}
	r.hist, r.minimal, r.optimal = a.Hist, a.Minimal, a.Optimal
	return nil
}

// ArtifactFile is the plancensus artifact's file name inside the job
// directory.
const ArtifactFile = "artifact.plan"

// plancensusRunner sweeps every canonical shape of the family in rank
// order and writes the plan-census artifact, one chunk per largest-axis
// value (artifact.ChunkRange makes those rank-contiguous, so the builder is
// append-only).  The NDJSON stream carries one line per chunk plus the
// summary — the artifact file itself is the payload, downloaded via
// GET /v1/jobs/{id}/artifact.
//
// The aggregate is the builder position (nextRank, stringCursor) plus the
// dilation histogram; on restore (or an intra-chunk retry) the builder is
// reopened at exactly the checkpointed position, truncating whatever a torn
// chunk wrote past it, which keeps both the artifact bytes and the record
// stream byte-identical to an uninterrupted run.
type plancensusRunner struct {
	params  api.PlanCensusParams
	family  guest.Family
	planner *core.Planner
	dir     string

	b        *artifact.Builder
	nextRank uint64
	cursor   uint64
	hist     map[string]uint64
	minimal  uint64
}

func (r *plancensusRunner) chunks() int { return r.params.MaxAxis }

func (r *plancensusRunner) path() string { return filepath.Join(r.dir, ArtifactFile) }

// ensureBuilder (re)opens the builder at the checkpointed position.  A
// builder whose position drifted from the aggregate (a failed chunk
// attempt) is discarded and reopened so the retry replays cleanly.
func (r *plancensusRunner) ensureBuilder() error {
	if r.b != nil {
		if next, cur := r.b.Pos(); next == r.nextRank && cur == r.cursor {
			return nil
		}
		r.b.Abort()
		r.b = nil
	}
	b, err := artifact.OpenBuilderAt(r.path(), r.family.String(), r.params.Dims, r.params.MaxAxis,
		r.planner.Fingerprint(), r.nextRank, r.cursor)
	if err != nil {
		return err
	}
	r.b = b
	return nil
}

func (r *plancensusRunner) runChunk(ctx context.Context, chunk int, buf *bytes.Buffer) (uint64, error) {
	if err := r.ensureBuilder(); err != nil {
		return 0, err
	}
	c := chunk + 1
	lo, hi := artifact.ChunkRange(r.params.Dims, c)
	hist := map[string]uint64{}
	var minimal uint64
	var addErr error
	artifact.EachShapeWithMax(r.params.Dims, c, func(s mesh.Shape) {
		if addErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			addErr = err
			return
		}
		p := r.planner.PlanGuest(r.family, s)
		if err := r.b.Add(s, p); err != nil {
			addErr = err
			return
		}
		if p.Dilation == core.DilationUnknown {
			hist["unknown"]++
		} else {
			hist[strconv.Itoa(p.Dilation)]++
		}
		if p.Minimal() {
			minimal++
		}
	})
	if addErr != nil {
		return 0, addErr
	}
	if err := r.b.Flush(); err != nil {
		return 0, err
	}
	next, cursor := r.b.Pos()
	if next != hi {
		return 0, fmt.Errorf("jobs: plancensus chunk %d wrote to rank %d, want %d", c, next, hi)
	}
	if err := writeRecord(buf, api.PlanCensusChunkRecord{
		Type: api.RecordPlanCensusChunk, MaxAxisValue: c,
		Records: hi - lo, RankLo: lo, RankHi: hi, StringBytes: cursor,
	}); err != nil {
		return 0, err
	}
	r.nextRank, r.cursor = next, cursor
	for k, v := range hist {
		r.hist[k] += v
	}
	r.minimal += minimal
	return hi - lo, nil
}

func (r *plancensusRunner) finish(buf *bytes.Buffer, shapes uint64) error {
	// Resuming directly into finish (killed between the last chunk and the
	// summary) arrives with no open builder; reopen at the full position.
	if err := r.ensureBuilder(); err != nil {
		return err
	}
	hdr, err := r.b.Finalize()
	r.b = nil
	if err != nil {
		return err
	}
	return writeRecord(buf, api.SummaryRecord{
		Type: api.RecordSummary, Schema: api.JobSchemaVersion, Kind: api.JobPlanCensus,
		Chunks: r.chunks(), Shapes: shapes,
		Minimal: r.minimal, DilationHist: r.hist,
		Artifact: &api.ArtifactInfo{
			Records:     hdr.RecordCount,
			StringBytes: hdr.StringBytes,
			Bytes:       artifact.HeaderSize + hdr.RecordCount*artifact.RecordSize + hdr.StringBytes,
			CRC32:       fmt.Sprintf("%08x", hdr.CRC),
			Fingerprint: r.planner.Fingerprint(),
		},
	})
}

type plancensusAgg struct {
	NextRank uint64            `json:"next_rank"`
	Cursor   uint64            `json:"cursor"`
	Hist     map[string]uint64 `json:"hist"`
	Minimal  uint64            `json:"minimal"`
}

func (r *plancensusRunner) snapshot() (json.RawMessage, error) {
	return json.Marshal(plancensusAgg{NextRank: r.nextRank, Cursor: r.cursor, Hist: r.hist, Minimal: r.minimal})
}

func (r *plancensusRunner) restore(agg json.RawMessage) error {
	var a plancensusAgg
	if err := json.Unmarshal(agg, &a); err != nil {
		return err
	}
	if a.Hist == nil {
		a.Hist = map[string]uint64{}
	}
	r.nextRank, r.cursor, r.hist, r.minimal = a.NextRank, a.Cursor, a.Hist, a.Minimal
	return nil
}

// close releases the builder when a run stops without finishing (shutdown,
// cancel, failure); the provisional header keeps the torn file invalid.
func (r *plancensusRunner) close() {
	if r.b != nil {
		r.b.Abort()
		r.b = nil
	}
}
