package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/pkg/api"
)

// TestPlanSweepFamilies runs the plansweep job kind over each non-mesh
// family and checks the result stream against a direct in-process sweep:
// same shapes in the same order, every row stamped with the family, and
// plan/dilation values matching the planner.
func TestPlanSweepFamilies(t *testing.T) {
	for _, tc := range []struct {
		family   string
		dims     int
		maxAxis  int
		maxNodes int
	}{
		{"torus", 2, 6, 36},
		{"cylinder", 2, 6, 36},
		{"tree", 1, 63, 63},
	} {
		t.Run(tc.family, func(t *testing.T) {
			req := api.JobSubmitRequest{
				Kind: api.JobPlanSweep,
				PlanSweep: &api.PlanSweepParams{
					Family: tc.family, Dims: tc.dims,
					MaxAxis: tc.maxAxis, MaxNodes: tc.maxNodes,
				},
			}
			_, raw := runToCompletion(t, req)

			fam, err := guest.ParseFamily(tc.family)
			if err != nil {
				t.Fatal(err)
			}
			want := core.FamilyShapes(fam, tc.dims, tc.maxAxis, tc.maxNodes)
			planner := core.NewPlanner(core.DefaultOptions)

			rows := 0
			sc := bufio.NewScanner(bytes.NewReader(raw))
			for sc.Scan() {
				var head struct {
					Type string `json:"type"`
				}
				if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
					t.Fatal(err)
				}
				if head.Type != api.RecordPlan {
					continue
				}
				var rec api.PlanRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					t.Fatal(err)
				}
				if rows >= len(want) {
					t.Fatalf("more rows than the %d enumerated shapes", len(want))
				}
				s := want[rows]
				if rec.Family != tc.family {
					t.Fatalf("row %d family = %q, want %q", rows, rec.Family, tc.family)
				}
				if rec.Shape != s.String() {
					t.Fatalf("row %d shape = %q, want %q", rows, rec.Shape, s)
				}
				p := planner.PlanGuest(fam, s)
				if rec.Plan != p.String() || rec.CubeDim != p.CubeDim || rec.Method != p.Method {
					t.Fatalf("row %d = %+v, planner says %s cube %d method %d",
						rows, rec, p, p.CubeDim, p.Method)
				}
				rows++
			}
			if rows != len(want) {
				t.Fatalf("stream has %d plan rows, enumeration has %d", rows, len(want))
			}
		})
	}
}

// TestPlanSweepRejectsBadFamily: an unknown family name fails at submit.
func TestPlanSweepRejectsBadFamily(t *testing.T) {
	m, err := Open(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)
	_, err = m.Submit(api.JobSubmitRequest{
		Kind: api.JobPlanSweep,
		PlanSweep: &api.PlanSweepParams{
			Family: "klein-bottle", Dims: 2, MaxAxis: 4, MaxNodes: 16,
		},
	})
	if err == nil {
		t.Fatal("submit accepted an unknown family")
	}
}
