package jobs

import (
	"context"
	"io"
	"log/slog"
	"testing"
	"time"

	"repro/pkg/api"
)

// benchJob runs one job end to end through the manager (submit, chunk loop,
// checkpoints, finish records) and reports shape throughput — the number a
// capacity plan for the full 512³ census starts from.
func benchJob(b *testing.B, req api.JobSubmitRequest, shapes float64) {
	b.Helper()
	dir := b.TempDir()
	m, err := Open(Config{
		DataDir: dir,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	}()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		st, err := m.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		for {
			cur, err := m.Status(st.ID)
			if err != nil {
				b.Fatal(err)
			}
			if cur.State.Terminal() {
				if cur.State != api.JobDone {
					b.Fatalf("job ended %s: %s", cur.State, cur.Error)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.ReportMetric(shapes*float64(b.N)/time.Since(start).Seconds(), "shapes/sec")
}

func BenchmarkCensusJob_n6(b *testing.B) {
	benchJob(b, api.JobSubmitRequest{
		Kind: api.JobCensus, Census: &api.CensusParams{MaxN: 6},
	}, float64(uint64(1)<<18))
}

func BenchmarkCensusJob_n7(b *testing.B) {
	benchJob(b, api.JobSubmitRequest{
		Kind: api.JobCensus, Census: &api.CensusParams{MaxN: 7},
	}, float64(uint64(1)<<21))
}

func BenchmarkPlanSweepJob(b *testing.B) {
	benchJob(b, api.JobSubmitRequest{
		Kind:      api.JobPlanSweep,
		PlanSweep: &api.PlanSweepParams{Dims: 3, MaxAxis: 16, MaxNodes: 4096},
	}, 688) // |SortedShapes(3, 16, 4096)|
}
