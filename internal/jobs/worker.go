package jobs

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/pkg/api"
)

// ExecuteChunk executes exactly one chunk of a job spec and returns its
// portable result — the compute half of the fabric's worker mode (POST
// /v1/internal/chunks).  It needs no Manager: no data dir, no queue, no
// checkpoints — a fresh runner is built, validated exactly like a
// submission, and driven for the one chunk.  Determinism of the runners
// makes re-execution free: the coordinator may send the same chunk to
// several peers (requeue after a failure) and every copy returns the same
// bytes.
//
// defaultWorkers is the per-chunk parallelism when the job spec does not
// set workers (< 1 means GOMAXPROCS); planner should be the server's own
// so worker-side planning warms the shared plan cache (nil builds a
// default one).  Validation failures wrap ErrBadRequest; a panicking chunk
// is recovered into an error, failing only this request.
func ExecuteChunk(ctx context.Context, req api.ChunkRequest, defaultWorkers int, planner *core.Planner) (res *api.ChunkResult, err error) {
	if req.Version != api.Version {
		return nil, fmt.Errorf("%w: chunk request schema v%d, this server speaks v%d",
			ErrBadRequest, req.Version, api.Version)
	}
	if planner == nil {
		planner = core.NewPlanner(core.DefaultOptions)
	}
	workers := req.Job.Workers
	if workers < 1 {
		workers = defaultWorkers
	}
	if workers > 32 { // the Manager's default MaxWorkers cap
		workers = 32
	}
	r, err := buildRunner(&req.Job, workers, planner, "")
	if err != nil {
		return nil, err
	}
	dr, ok := r.(distRunner)
	if !ok {
		return nil, fmt.Errorf("%w: kind %q cannot run distributed", ErrBadRequest, req.Job.Kind)
	}
	if req.Chunk < 0 || req.Chunk >= r.chunks() {
		return nil, fmt.Errorf("%w: chunk %d out of range [0,%d)", ErrBadRequest, req.Chunk, r.chunks())
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("jobs: chunk %d panicked: %v", req.Chunk, p)
		}
	}()
	// When the coordinator propagated a trace context, run the chunk under a
	// local root span and ship its snapshot back, stamped with the caller's
	// trace ID and parent span ID so the coordinator can validate the stitch.
	var span *obs.Span
	if req.Trace != nil && req.Trace.TraceID != "" {
		ctx, span = obs.StartRoot(ctx, fmt.Sprintf("exec chunk %d", req.Chunk))
		span.SetAttr("chunk", req.Chunk)
		span.SetAttr("kind", string(req.Job.Kind))
	}
	out, err := dr.remote(ctx, req.Chunk)
	span.End()
	if err != nil {
		return nil, err
	}
	out.Version, out.Chunk = api.Version, req.Chunk
	if span != nil {
		snap := span.Snapshot()
		snap.TraceID = req.Trace.TraceID
		snap.ParentSpanID = req.Trace.ParentSpanID
		if raw, merr := json.Marshal(snap); merr == nil {
			out.Span = raw
		}
	}
	return out, nil
}
