// Package manyone implements the many-to-one embeddings of Section 7,
// where several guest nodes may share a host node and quality is measured
// by the load factor (Definition 5) instead of expansion.
//
// The central construction is Lemma 5's axis contraction: an
// ℓ1ℓ1'×…×ℓkℓk' mesh collapses onto an embedding of the ℓ1×…×ℓk mesh by
// grouping ℓi' consecutive indices per axis.  In product terms this is
// Theorem 4 with the ℓ1'×…×ℓk' factor mapped entirely to a 0-cube, so the
// dilation is unchanged and the congestion of the i-th axis grows by
// exactly the number of collapsed lines, Πⱼ≠ᵢ ℓj' — which yields
// Corollary 4's congestion (Πℓᵢ)/minᵢℓᵢ for contracted Gray embeddings.
package manyone

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/embed"
	"repro/internal/guest"
	"repro/internal/mesh"
)

// AllToOne returns the embedding of the mesh into the 0-cube: every guest
// node maps to the single host node (load factor |V|, dilation 0).
func AllToOne(s mesh.Shape) *embed.Embedding {
	return embed.New(s.Clone(), 0)
}

// Contract embeds the componentwise product mesh shape∘factors into the
// host of e by collapsing factors[i] consecutive indices along axis i onto
// each node of e (Lemma 5).  Load factor multiplies by Πfactors, dilation
// is unchanged, and the congestion of axis-i host links multiplies by at
// most Πⱼ≠ᵢ factors[j].
func Contract(e *embed.Embedding, factors mesh.Shape) *embed.Embedding {
	if e.Family != guest.Mesh {
		panic("manyone: Contract requires a plain mesh embedding")
	}
	inner := AllToOne(factors)
	return core.Product(inner, e)
}

// GrayContracted implements Corollary 4: the ℓ1·2^n1 × … × ℓk·2^nk mesh is
// embedded into the (Σnᵢ)-cube with dilation one, optimal load factor
// Πℓᵢ, and congestion (Πℓᵢ)/minᵢℓᵢ.
func GrayContracted(loads mesh.Shape, pows []int) *embed.Embedding {
	if len(loads) != len(pows) {
		panic("manyone: loads and pows must have equal arity")
	}
	powShape := make(mesh.Shape, len(pows))
	for i, n := range pows {
		if n < 0 {
			panic("manyone: negative cube exponent")
		}
		powShape[i] = 1 << uint(n)
	}
	return Contract(embed.Gray(powShape), loads)
}

// FoldCube reduces the host cube of an embedding from e.N to n dimensions
// by dropping the high-order address bits (the cube "folding" of
// Corollary 5's proof).  Dilation cannot increase — adjacent hosts either
// stay adjacent or coincide — and the load factor multiplies by at most
// 2^(e.N−n).
func FoldCube(e *embed.Embedding, n int) *embed.Embedding {
	if n < 0 || n > e.N {
		panic(fmt.Sprintf("manyone: cannot fold %d-cube to %d", e.N, n))
	}
	out := embed.New(e.Guest, n)
	out.Family = e.Family
	mask := cube.Node(1)<<uint(n) - 1
	for i, h := range e.Map {
		out.Map[i] = h & mask
	}
	return out
}

// Corollary5Plan records the cover found by Corollary5: axis i of the
// guest is covered by Loads[i]·2^Pows[i] ≥ ℓᵢ.
type Corollary5Plan struct {
	Loads mesh.Shape
	Pows  []int
	N     int // target cube dimension after folding
}

// LoadFactor returns the plan's load factor: ΠLoads · 2^(ΣPows − N).
func (p Corollary5Plan) LoadFactor() int {
	f := 1
	for _, l := range p.Loads {
		f *= l
	}
	total := 0
	for _, n := range p.Pows {
		total += n
	}
	return f << uint(total-p.N)
}

// Corollary5 embeds the mesh into an n-cube with dilation one and load
// factor optimal within a factor of two, when axis covers ℓᵢ'·2^nᵢ ≥ ℓᵢ
// exist with ⌈Πℓᵢ⌉₂ == ⌈Πℓᵢ'2^nᵢ⌉₂ and Σnᵢ ≥ n.  It returns the embedding
// and the plan, or ok == false when no cover satisfies the conditions.
// Among valid covers the one with the smallest load factor is chosen.
func Corollary5(s mesh.Shape, n int) (*embed.Embedding, Corollary5Plan, bool) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	target := bits.CeilPow2(uint64(s.Nodes()))
	k := s.Dims()
	// Per axis, enumerate nᵢ = 0..⌈log₂ℓᵢ⌉ with the minimal cover
	// ℓᵢ' = ⌈ℓᵢ/2^nᵢ⌉ (a larger ℓᵢ' never helps).
	type axisChoice struct {
		load, pow int
		prod      uint64 // load·2^pow
	}
	choices := make([][]axisChoice, k)
	for i, l := range s {
		maxPow := bits.CeilLog2(uint64(l))
		for p := 0; p <= maxPow; p++ {
			load := (l + (1 << uint(p)) - 1) >> uint(p)
			choices[i] = append(choices[i], axisChoice{load: load, pow: p,
				prod: uint64(load) << uint(p)})
		}
	}
	best := Corollary5Plan{N: n}
	bestLoad := -1
	cur := make([]axisChoice, k)
	var rec func(i int, prod uint64, sumPow int)
	rec = func(i int, prod uint64, sumPow int) {
		if prod > target {
			return // ⌈Πcover⌉₂ would exceed ⌈Πℓ⌉₂
		}
		if i == k {
			if bits.CeilPow2(prod) != target || sumPow < n {
				return
			}
			loads := make(mesh.Shape, k)
			pows := make([]int, k)
			f := 1
			for j, c := range cur {
				loads[j], pows[j] = c.load, c.pow
				f *= c.load
			}
			f <<= uint(sumPow - n)
			if bestLoad == -1 || f < bestLoad {
				best.Loads, best.Pows = loads, pows
				bestLoad = f
			}
			return
		}
		for _, c := range choices[i] {
			cur[i] = c
			rec(i+1, prod*c.prod, sumPow+c.pow)
		}
	}
	rec(0, 1, 0)
	if bestLoad == -1 {
		return nil, Corollary5Plan{}, false
	}
	big := GrayContracted(best.Loads, best.Pows)
	sub := core.SubMesh(big, s)
	folded := FoldCube(sub, n)
	return folded, best, true
}

// OptimalLoad returns ⌈Πℓᵢ / 2^n⌉, the information-theoretic lower bound on
// the load factor of any embedding into an n-cube.
func OptimalLoad(s mesh.Shape, n int) int {
	hn := 1 << uint(n)
	return (s.Nodes() + hn - 1) / hn
}
