package manyone

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/mesh"
)

func TestAllToOne(t *testing.T) {
	e := AllToOne(mesh.Shape{3, 4})
	if err := e.VerifyManyToOne(); err != nil {
		t.Fatal(err)
	}
	if e.N != 0 || e.LoadFactor() != 12 || e.Dilation() != 0 {
		t.Errorf("AllToOne: %s", e.Measure())
	}
}

func TestContractPath(t *testing.T) {
	// A 12-node path contracted by 3 onto a Gray path of 4: load 3,
	// dilation 1, congestion 1 (one crossing edge per group boundary).
	base := embed.Gray(mesh.Shape{4})
	e := Contract(base, mesh.Shape{3})
	if err := e.VerifyManyToOne(); err != nil {
		t.Fatal(err)
	}
	if !e.Guest.Equal(mesh.Shape{12}) {
		t.Fatalf("guest = %v", e.Guest)
	}
	m := e.Measure()
	if m.LoadFactor != 3 || m.Dilation != 1 || m.Congestion != 1 {
		t.Errorf("contracted path: %s", m)
	}
}

func TestContractLoadLaw(t *testing.T) {
	// Theorem 4 / Lemma 5: load multiplies by Πfactors.
	base := embed.Gray(mesh.Shape{4, 4})
	e := Contract(base, mesh.Shape{2, 3})
	if err := e.VerifyManyToOne(); err != nil {
		t.Fatal(err)
	}
	if !e.Guest.Equal(mesh.Shape{8, 12}) {
		t.Fatalf("guest = %v", e.Guest)
	}
	if e.LoadFactor() != 6 {
		t.Errorf("load = %d, want 6", e.LoadFactor())
	}
	if e.Dilation() != 1 {
		t.Errorf("dilation = %d, want 1", e.Dilation())
	}
}

func TestGrayContractedCorollary4(t *testing.T) {
	// Corollary 4: ℓ1·2^n1 × ℓ2·2^n2 mesh into (n1+n2)-cube, dilation 1,
	// congestion (Πℓ)/min ℓ.
	cases := []struct {
		loads    mesh.Shape
		pows     []int
		wantCong int
		wantLoad int
	}{
		{mesh.Shape{3, 5}, []int{3, 2}, 5, 15}, // 24x20, cong 15/3 = 5
		{mesh.Shape{2, 2}, []int{2, 2}, 2, 4},  // 8x8 into 4-cube
		{mesh.Shape{4, 1}, []int{1, 3}, 1, 4},  // cong 4/1? (Πℓ)/min = 4/1 = 4 upper bound; actual may be lower
	}
	for _, c := range cases {
		e := GrayContracted(c.loads, c.pows)
		if err := e.VerifyManyToOne(); err != nil {
			t.Fatalf("%v: %v", c.loads, err)
		}
		if e.Dilation() != 1 {
			t.Errorf("%v: dilation %d, want 1", c.loads, e.Dilation())
		}
		if e.LoadFactor() != c.wantLoad {
			t.Errorf("%v: load %d, want %d", c.loads, e.LoadFactor(), c.wantLoad)
		}
		bound := 1
		for _, l := range c.loads {
			bound *= l
		}
		min := c.loads[0]
		for _, l := range c.loads {
			if l < min {
				min = l
			}
		}
		bound /= min
		if got := e.Congestion(); got > bound {
			t.Errorf("%v: congestion %d exceeds Corollary 4 bound %d", c.loads, got, bound)
		}
		if c.wantCong > 0 && c.loads[0] != 4 {
			if got := e.Congestion(); got != c.wantCong {
				t.Errorf("%v: congestion %d, want exactly %d", c.loads, got, c.wantCong)
			}
		}
		// Load is optimal: |V| / 2^n exactly.
		if opt := e.OptimalLoadFactor(); e.LoadFactor() != opt {
			t.Errorf("%v: load %d not optimal (%d)", c.loads, e.LoadFactor(), opt)
		}
	}
}

func TestFoldCube(t *testing.T) {
	e := embed.Gray(mesh.Shape{4, 4}) // 4-cube
	f := FoldCube(e, 2)
	if err := f.VerifyManyToOne(); err != nil {
		t.Fatal(err)
	}
	if f.N != 2 || f.LoadFactor() != 4 {
		t.Errorf("folded: %s", f.Measure())
	}
	if f.Dilation() > e.Dilation() {
		t.Errorf("folding increased dilation: %d > %d", f.Dilation(), e.Dilation())
	}
	// Folding to the same size is the identity.
	same := FoldCube(e, 4)
	for i := range same.Map {
		if same.Map[i] != e.Map[i] {
			t.Fatal("FoldCube(e, e.N) changed the map")
		}
	}
}

func TestFoldCubePanics(t *testing.T) {
	e := embed.Gray(mesh.Shape{4})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FoldCube(e, 3)
}

func TestCorollary5Example19x19(t *testing.T) {
	// §7's worked example: a 19x19 mesh into up to a 5-cube with dilation
	// one and load 15 (optimal is ⌈361/32⌉ = 12, so within a factor of 2).
	e, plan, ok := Corollary5(mesh.Shape{19, 19}, 5)
	if !ok {
		t.Fatal("Corollary5 found no cover for 19x19")
	}
	if err := e.VerifyManyToOne(); err != nil {
		t.Fatal(err)
	}
	if e.N != 5 {
		t.Errorf("cube dim %d, want 5", e.N)
	}
	if e.Dilation() != 1 {
		t.Errorf("dilation %d, want 1", e.Dilation())
	}
	if got := e.LoadFactor(); got != 15 {
		t.Errorf("load %d, want 15 (plan %+v)", got, plan)
	}
	if plan.LoadFactor() != 15 {
		t.Errorf("plan load %d, want 15", plan.LoadFactor())
	}
	if opt := OptimalLoad(mesh.Shape{19, 19}, 5); opt != 12 {
		t.Errorf("optimal load %d, want 12", opt)
	}
	// within a factor of two
	if e.LoadFactor() > 2*OptimalLoad(mesh.Shape{19, 19}, 5) {
		t.Errorf("load %d exceeds twice the optimum", e.LoadFactor())
	}
}

func TestCorollary5WithFolding(t *testing.T) {
	// Ask for a smaller cube than the cover's Σnᵢ: folding must kick in
	// and the load doubles per folded dimension.
	e, plan, ok := Corollary5(mesh.Shape{19, 19}, 4)
	if !ok {
		t.Fatal("no cover")
	}
	if e.N != 4 {
		t.Errorf("cube dim %d", e.N)
	}
	if e.Dilation() > 1 {
		t.Errorf("dilation %d", e.Dilation())
	}
	if e.LoadFactor() > 2*OptimalLoad(mesh.Shape{19, 19}, 4) {
		t.Errorf("load %d vs optimal %d: beyond factor two (plan %+v)",
			e.LoadFactor(), OptimalLoad(mesh.Shape{19, 19}, 4), plan)
	}
}

func TestCorollary5Infeasible(t *testing.T) {
	// n larger than any Σnᵢ compatible with the ⌈·⌉₂ condition: 3x3 into
	// a 4-cube would need Σnᵢ ≥ 4 with cover ≤ 16; covers: 4x4 (pows 2,2)
	// works — so pick something truly infeasible: n beyond ⌈log₂|V|⌉ bits
	// of cover is impossible only when cover product can't reach 2^n...
	// 3x3 target=16: (4,4) pows(2,2) sum 4 ≥ 4 ✓ feasible. Use n = 5:
	// Σnᵢ ≥ 5 needs cover ≥ 32 > 16 ✗.
	if _, _, ok := Corollary5(mesh.Shape{3, 3}, 5); ok {
		t.Error("expected infeasible")
	}
}

func TestCorollary5DilationOneAlways(t *testing.T) {
	for _, s := range []mesh.Shape{{19, 19}, {5, 5, 5}, {7, 11}, {100}} {
		n := s.MinCubeDim() - 2
		if n < 0 {
			n = 0
		}
		e, _, ok := Corollary5(s, n)
		if !ok {
			continue
		}
		if err := e.VerifyManyToOne(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if e.Dilation() > 1 {
			t.Errorf("%v: dilation %d, want ≤ 1", s, e.Dilation())
		}
	}
}

func TestContractCongestionBound(t *testing.T) {
	// Lemma 5: congestion of axis-i links ≤ cᵢ · Πⱼ≠ᵢ ℓⱼ'.
	base := embed.Gray(mesh.Shape{4, 4}) // congestion 1 per axis
	e := Contract(base, mesh.Shape{3, 4})
	// bound: max over axes of 1·(other factor) = max(4, 3) = 4
	if got := e.Congestion(); got > 4 {
		t.Errorf("congestion %d exceeds Lemma 5 bound 4", got)
	}
}

func BenchmarkContract(b *testing.B) {
	base := embed.Gray(mesh.Shape{16, 16})
	factors := mesh.Shape{3, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Contract(base, factors)
	}
}

func BenchmarkCorollary5(b *testing.B) {
	s := mesh.Shape{19, 19}
	for i := 0; i < b.N; i++ {
		_, _, _ = Corollary5(s, 5)
	}
}
