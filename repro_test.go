package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

func TestEmbedFacade(t *testing.T) {
	r := repro.Embed(repro.MustShape("5x6x7"))
	if err := r.Embedding.Verify(); err != nil {
		t.Fatal(err)
	}
	if !r.Metrics.Minimal {
		t.Errorf("5x6x7 should be minimal: %s", r.Metrics)
	}
	if r.Metrics.Dilation > 2 {
		t.Errorf("5x6x7 dilation %d", r.Metrics.Dilation)
	}
	if r.Plan == nil || r.Plan.String() == "" {
		t.Error("missing plan")
	}
}

func TestEmbedGrayFacade(t *testing.T) {
	r := repro.EmbedGray(repro.MustShape("5x6x7"))
	if r.Metrics.Dilation != 1 {
		t.Errorf("Gray dilation %d", r.Metrics.Dilation)
	}
	if r.Metrics.Minimal {
		t.Error("5x6x7 Gray should not be minimal (512 hosts for 210 nodes)")
	}
}

func TestEmbedTorusFacade(t *testing.T) {
	r := repro.EmbedTorus(repro.MustShape("6x10"))
	if err := r.Embedding.Verify(); err != nil {
		t.Fatal(err)
	}
	if !r.Metrics.Wrap || !r.Metrics.Minimal || r.Metrics.Dilation > 2 {
		t.Errorf("6x10 torus: %s", r.Metrics)
	}
}

func TestEmbedManyToOneFacade(t *testing.T) {
	r, ok := repro.EmbedManyToOne(repro.MustShape("19x19"), 5)
	if !ok {
		t.Fatal("19x19 should satisfy Corollary 5")
	}
	if r.Metrics.Dilation != 1 || r.Metrics.LoadFactor != 15 {
		t.Errorf("19x19: %s", r.Metrics)
	}
}

func TestProductFacade(t *testing.T) {
	a := repro.Embed(repro.MustShape("3x5")).Embedding
	b := repro.EmbedGray(repro.MustShape("4x4")).Embedding
	p := repro.Product(a, b)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.Dilation() > 2 {
		t.Errorf("product dilation %d", p.Dilation())
	}
	sub := repro.SubMesh(p, repro.MustShape("12x19"))
	if err := sub.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestContractFacade(t *testing.T) {
	base := repro.EmbedGray(repro.MustShape("8x8")).Embedding
	c := repro.Contract(base, repro.Shape{3, 2})
	if err := c.VerifyManyToOne(); err != nil {
		t.Fatal(err)
	}
	if c.LoadFactor() != 6 || c.Dilation() != 1 {
		t.Errorf("contract: %s", c.Measure())
	}
}

func TestParseShapeError(t *testing.T) {
	if _, err := repro.ParseShape("3x0"); err == nil {
		t.Error("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustShape should panic")
		}
	}()
	repro.MustShape("bogus")
}

func TestEmbedFuzzShapes(t *testing.T) {
	// End-to-end sweep: random shapes of 1-4 axes always produce valid,
	// minimal-expansion embeddings whose measured dilation respects any
	// plan guarantee.
	r := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 120; trial++ {
		dims := r.Intn(4) + 1
		s := make(repro.Shape, dims)
		nodes := 1
		for i := range s {
			s[i] = r.Intn(20) + 1
			nodes *= s[i]
		}
		if nodes > 4096 {
			continue
		}
		res := repro.EmbedWith(s, repro.Options{})
		if err := res.Embedding.Verify(); err != nil {
			t.Fatalf("%v: %v (plan %s)", s, err, res.Plan)
		}
		if !res.Metrics.Minimal {
			t.Errorf("%v: not minimal (plan %s)", s, res.Plan)
		}
	}
}

func TestTorusFuzzShapes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		dims := r.Intn(3) + 1
		s := make(repro.Shape, dims)
		nodes := 1
		for i := range s {
			s[i] = r.Intn(14) + 2
			nodes *= s[i]
		}
		if nodes > 4096 {
			continue
		}
		res := repro.EmbedTorus(s)
		if err := res.Embedding.Verify(); err != nil {
			t.Fatalf("torus %v: %v", s, err)
		}
		if !res.Metrics.Minimal || !res.Metrics.Wrap {
			t.Errorf("torus %v: %s", s, res.Metrics)
		}
	}
}
