package api

// Batch-sweep job wire schema: POST /v1/jobs submits one of the paper's
// whole-range censuses as an asynchronous job; GET /v1/jobs/{id} polls its
// lifecycle; GET /v1/jobs/{id}/results streams the job's NDJSON record
// stream (resumable by byte offset via the Last-Event-Offset header);
// DELETE /v1/jobs/{id} cancels it.
//
// Result streams are deterministic by construction — records are appended
// in chunk order and every tally is integer-derived — so the bytes a client
// read before a disconnect (or a server kill) are always a prefix of the
// bytes it would read from a fresh, uninterrupted run.  That is what makes
// offset resume sound.

// ResultsOffsetHeader is the header carrying the byte offset into a job's
// NDJSON result stream.  A client sends it on GET /v1/jobs/{id}/results to
// resume after a disconnect (the value is the count of result-stream bytes
// it has already consumed); the server echoes the effective start offset
// back on the response.
const ResultsOffsetHeader = "Last-Event-Offset"

// JobKind names one of the batch sweeps the job subsystem can run.
type JobKind string

const (
	// JobCensus is the Figure 2 coverage census: every ℓ1×ℓ2×ℓ3 mesh with
	// axes ≤ 2^max_n, tallied by the first method (1..4) achieving relative
	// expansion 1 and by ε ≤ 2 reachability.  One shard record per first
	// axis, then the cumulative per-domain rows and a summary.
	JobCensus JobKind = "census"
	// JobEpsilon is the ε-expansion distribution table: for each domain
	// exponent n ≤ max_n, the fraction of meshes whose best relative
	// expansion after all four methods is 1, 2, 4 or worse.
	JobEpsilon JobKind = "epsilon"
	// JobPlanSweep plans every sorted shape within the axis/node bounds
	// through the decomposition planner and records one line per shape
	// (plan, method, dilation bound, and for 3-D shapes the analytic
	// per-method-prefix relative expansions).
	JobPlanSweep JobKind = "plansweep"
	// JobPlanCensus plans every canonical shape of the family within the
	// axis bound and writes the plans into a compact, versioned, mmap-able
	// artifact file (internal/artifact) the server can load with
	// -plan-artifact to answer /v1/plan misses in O(1).  One chunk (and
	// one NDJSON record) per largest-axis value; the artifact itself is
	// downloaded via GET /v1/jobs/{id}/artifact once the job is done.
	JobPlanCensus JobKind = "plancensus"
)

// JobState is a job's lifecycle state.  Transitions: queued → running →
// done | failed | cancelled; queued → cancelled.  A server restart replays
// queued/running jobs from their last checkpoint without leaving this
// state machine.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobSubmitRequest is the POST /v1/jobs body.  Exactly the parameter block
// matching Kind must be set.
type JobSubmitRequest struct {
	Kind JobKind `json:"kind"`
	// Workers bounds the per-chunk parallelism (values below one mean the
	// server's default).  Chunks themselves always run sequentially — that
	// is what makes the record stream and the checkpoints deterministic.
	Workers int `json:"workers,omitempty"`
	// Distributed asks the coordinator to shard the job's chunks across its
	// fabric peers (see fabric.go).  The final results are byte-identical to
	// a single-node run — only the wall-clock changes.  Rejected when the
	// server has no fabric configured.
	Distributed bool              `json:"distributed,omitempty"`
	Census      *CensusParams     `json:"census,omitempty"`
	Epsilon     *EpsilonParams    `json:"epsilon,omitempty"`
	PlanSweep   *PlanSweepParams  `json:"plansweep,omitempty"`
	PlanCensus  *PlanCensusParams `json:"plancensus,omitempty"`
}

// CensusParams parameterizes a census job: axes range over 1..2^MaxN
// (MaxN = 9 is the paper's 512×512×512 domain, 134M ordered shapes).
type CensusParams struct {
	MaxN int `json:"max_n"`
}

// EpsilonParams parameterizes an epsilon job: one distribution row per
// domain exponent n = 1..MaxN.
type EpsilonParams struct {
	MaxN int `json:"max_n"`
}

// PlanSweepParams parameterizes a plansweep job: canonical guest shapes of
// the family (sorted for mesh and torus) with Dims axes, each ≤ MaxAxis, and
// at most MaxNodes nodes.  Family empty means "mesh" (see
// PlanRequest.Family); tree sweeps ignore Dims beyond requiring ≥ 1.
type PlanSweepParams struct {
	Dims     int    `json:"dims"`
	MaxAxis  int    `json:"max_axis"`
	MaxNodes int    `json:"max_nodes"`
	Family   string `json:"family,omitempty"`
}

// PlanCensusParams parameterizes a plancensus job: every canonical
// (ascending-sorted) shape of the family with Dims axes each in 1..MaxAxis
// is planned and written to the artifact.  Family empty means "mesh"; only
// the fully-sorted-canonical families (mesh, torus) are rankable.
type PlanCensusParams struct {
	Dims    int    `json:"dims"`
	MaxAxis int    `json:"max_axis"`
	Family  string `json:"family,omitempty"`
}

// JobProgress is the live progress block of a job status.
type JobProgress struct {
	ChunksDone  int `json:"chunks_done"`
	ChunksTotal int `json:"chunks_total"`
	// Shapes counts guest shapes processed so far (census and epsilon count
	// ordered shapes, plansweep counts enumerated shapes).
	Shapes uint64 `json:"shapes"`
	// ShapesPerSec is the observed throughput since the job started running
	// (zero until the first chunk lands, and on terminal states).
	ShapesPerSec float64 `json:"shapes_per_sec,omitempty"`
	// ETAMS estimates the remaining run time in milliseconds from the
	// per-chunk average so far; zero when unknown.
	ETAMS int64 `json:"eta_ms,omitempty"`
	// Retries counts chunk attempts that panicked and were retried.
	Retries int `json:"retries,omitempty"`
	// ResultBytes is the committed (replay-stable, streamable) size of the
	// NDJSON result stream.
	ResultBytes int64 `json:"result_bytes"`
}

// JobStatus is the GET /v1/jobs/{id} reply, the POST /v1/jobs reply (202),
// and the DELETE /v1/jobs/{id} reply.
type JobStatus struct {
	Version        int         `json:"version"`
	ID             string      `json:"id"`
	Kind           JobKind     `json:"kind"`
	State          JobState    `json:"state"`
	Error          string      `json:"error,omitempty"`
	Progress       JobProgress `json:"progress"`
	CreatedUnixMS  int64       `json:"created_unix_ms"`
	StartedUnixMS  int64       `json:"started_unix_ms,omitempty"`
	FinishedUnixMS int64       `json:"finished_unix_ms,omitempty"`
	// Resumed counts how many times the job was restored from a checkpoint
	// after a server restart.
	Resumed int `json:"resumed,omitempty"`
	// Request echoes the submitted job spec.
	Request *JobSubmitRequest `json:"request,omitempty"`
	// Fabric reports the per-peer chunk assignment while a distributed job
	// is running; absent for local jobs and terminal states.
	Fabric *FabricProgress `json:"fabric,omitempty"`
}

// JobListResponse is the GET /v1/jobs reply (jobs in creation order).
type JobListResponse struct {
	Version int         `json:"version"`
	Jobs    []JobStatus `json:"jobs"`
}

// NDJSON result-record discriminators (the "type" field of every line).
const (
	RecordCensusShard     = "census_shard"
	RecordCensusRow       = "census_row"
	RecordEpsilonRow      = "epsilon_row"
	RecordPlan            = "plan"
	RecordPlanCensusChunk = "plancensus_chunk"
	RecordSummary         = "summary"
)

// CensusBucket is one domain bucket of a census shard: the tallies over
// sorted triples bucketed at domain exponent N (weighted by axis
// permutations).  Count[m] counts shapes whose smallest working method is
// m; Count[0] counts the exceptions (no method achieves ε = 1).
type CensusBucket struct {
	N     int       `json:"n"`
	Count [5]uint64 `json:"count"`
	Eps2  uint64    `json:"eps2"`
	Total uint64    `json:"total"`
}

// CensusShardRecord is one census chunk's output: the tallies for every
// sorted triple with first axis A.  Empty buckets are omitted.
type CensusShardRecord struct {
	Type    string         `json:"type"` // RecordCensusShard
	A       int            `json:"a"`
	Buckets []CensusBucket `json:"buckets"`
}

// CensusRowRecord is one cumulative Figure 2 row: the percentage of shapes
// in the 2^N domain achieving minimal expansion with methods ≤ i (S[i-1]),
// and with ε ≤ 2 after all methods (S4Eps2).
type CensusRowRecord struct {
	Type       string     `json:"type"` // RecordCensusRow
	N          int        `json:"n"`
	S          [4]float64 `json:"s"`
	S4Eps2     float64    `json:"s4_eps2"`
	Total      uint64     `json:"total"`
	Exceptions uint64     `json:"exceptions"`
	// CertOptimalPct (schema 2) is the fraction of the domain that is
	// certified dilation-optimal: the method-1 stratum, whose Gray-minimal
	// plans achieve dilation 1 — the unconditional floor.
	CertOptimalPct float64 `json:"cert_optimal_pct,omitempty"`
}

// EpsilonRowRecord is one ε-distribution row for the 2^N domain.
type EpsilonRowRecord struct {
	Type     string  `json:"type"` // RecordEpsilonRow
	N        int     `json:"n"`
	Eps1     float64 `json:"eps1"`
	Eps2     float64 `json:"eps2"`
	Eps4     float64 `json:"eps4"`
	EpsWorse float64 `json:"eps_worse"`
}

// PlanRecord is one plansweep line: the planner's result for one shape.
type PlanRecord struct {
	Type          string `json:"type"` // RecordPlan
	Shape         string `json:"shape"`
	Family        string `json:"family,omitempty"` // guest family; empty means mesh
	Nodes         int    `json:"nodes"`
	CubeDim       int    `json:"cube_dim"`
	Plan          string `json:"plan"`
	Method        int    `json:"method"`
	DilationBound int    `json:"dilation_bound"` // -1: no a-priori bound
	Minimal       bool   `json:"minimal"`
	// BestMethod and RelExpansion are the analytic §5 classification,
	// present for 3-D shapes only.
	BestMethod   int       `json:"best_method,omitempty"`
	RelExpansion []float64 `json:"rel_expansion,omitempty"`
	// Schema-2 certificate columns (absent in schema-1 rows): the
	// certified floors at the plan's cube, the planned-dilation gap
	// (−1 when the plan carries no a-priori dilation bound), and whether
	// the plan provably achieves the dilation floor.
	LowerBounds  *LowerBounds `json:"lower_bounds,omitempty"`
	GapToOptimal int          `json:"gap_to_optimal"`
	Optimal      bool         `json:"optimal,omitempty"`
}

// PlanCensusChunkRecord is one plancensus chunk's line: the shapes whose
// largest axis is exactly MaxAxisValue, appended to the artifact as ranks
// [RankLo, RankHi).
type PlanCensusChunkRecord struct {
	Type         string `json:"type"` // RecordPlanCensusChunk
	MaxAxisValue int    `json:"max_axis_value"`
	Records      uint64 `json:"records"`
	RankLo       uint64 `json:"rank_lo"`
	RankHi       uint64 `json:"rank_hi"`
	// StringBytes is the cumulative plan-string section size after this
	// chunk (the builder's resume cursor).
	StringBytes uint64 `json:"string_bytes"`
}

// ArtifactInfo summarizes the artifact a plancensus job produced.
type ArtifactInfo struct {
	Records     uint64 `json:"records"`
	StringBytes uint64 `json:"string_bytes"`
	Bytes       uint64 `json:"bytes"`
	CRC32       string `json:"crc32"` // IEEE CRC-32 of the body, hex
	// Fingerprint is the planner option fingerprint the plans were
	// computed under (core.Planner.Fingerprint); a server only serves an
	// artifact whose fingerprint matches its own planner.
	Fingerprint string `json:"fingerprint"`
}

// SummaryRecord is the final line of every result stream.
type SummaryRecord struct {
	Type string `json:"type"` // RecordSummary
	// Schema is the JobSchemaVersion the stream was written under; absent
	// (0) identifies a pre-certificate schema-1 stream.
	Schema int     `json:"schema,omitempty"`
	Kind   JobKind `json:"kind"`
	Chunks int     `json:"chunks"`
	Shapes uint64  `json:"shapes"`
	// Exceptions is the census's count of shapes with no ε = 1 method in
	// the full domain.
	Exceptions uint64 `json:"exceptions,omitempty"`
	// DilationHist maps dilation bound → shape count for plansweep and
	// plancensus ("unknown" keys the snake fallback); Minimal counts
	// shapes whose plan reaches the minimal cube.
	DilationHist map[string]uint64 `json:"dilation_hist,omitempty"`
	Minimal      uint64            `json:"minimal,omitempty"`
	// Optimal (schema 2) counts plansweep shapes whose plan is certified
	// dilation-optimal at its cube.
	Optimal uint64 `json:"optimal,omitempty"`
	// Artifact describes the plancensus job's artifact file.
	Artifact *ArtifactInfo `json:"artifact,omitempty"`
}
