package api

import "encoding/json"

// DebugInfo is the "debug" block attached to API responses when the client
// asks for a per-request trace (?debug=trace or X-Debug-Trace: 1).
//
// Trace and PlanTrace are raw JSON rather than typed structs: their shapes
// belong to the server's observability layer (the span tracer and the
// planner's provenance recorder) and evolve with it, while this package
// pins only the stable envelope around them.
type DebugInfo struct {
	RequestID string `json:"request_id"`
	// Trace is the request's span tree.  The root span is still open while
	// the response is being written, so it is snapshotted mid-flight and
	// marked unfinished; its duration is the elapsed time at snapshot.
	Trace json.RawMessage `json:"trace,omitempty"`
	// PlanTrace is the planner's strategy provenance (cache-bypassed), for
	// endpoints that plan a decomposition.
	PlanTrace json.RawMessage `json:"plan_trace,omitempty"`
}
