package api

import "encoding/json"

// Distributed sweep-fabric wire schema.  A coordinator embedserver shards a
// distributed job's chunk range across worker peers: each chunk is executed
// remotely via POST /v1/internal/chunks (ChunkRequest → ChunkResult) and the
// coordinator folds the results strictly in chunk-index order, so the final
// result stream and aggregate are byte-identical to a single-node run of the
// same job.
//
// ChunkResult is portable by construction: it carries only chunk-local data
// (NDJSON rows, an aggregate *delta*, or position-independent plan entries),
// never anything that depends on which chunks ran before it.  That is what
// lets the coordinator fold chunks computed by any peer, in any completion
// order, behind the reorder buffer.
//
// The peer-admin schema (GET/POST /v1/peers) covers discovery: a static
// -peers list on the coordinator, or workers self-registering with -join.

// FabricSecretHeader carries the shared fabric secret on the internal
// endpoints (chunk execution, peer join).  A server started with
// -fabric-secret refuses requests whose header does not match; without a
// configured secret the internal endpoints are disabled entirely.
const FabricSecretHeader = "X-Fabric-Secret"

// ChunkRequest is the POST /v1/internal/chunks body: execute exactly one
// chunk of the given job spec.  Job is the full submit request so the worker
// can rebuild the kind runner the coordinator validated; Chunk indexes into
// the runner's fixed chunk range.
type ChunkRequest struct {
	Version int              `json:"version"`
	Job     JobSubmitRequest `json:"job"`
	Chunk   int              `json:"chunk"`
	// Trace is the coordinator's dispatch-span identity.  When set, the
	// worker runs the chunk under a child span and returns its snapshot in
	// ChunkResult.Span; when absent (tracing off) the worker records nothing.
	Trace *TraceContext `json:"trace,omitempty"`
}

// TraceContext propagates a span identity across the fabric: TraceID names
// the coordinator job's trace, ParentSpanID the dispatch span the worker's
// subtree will be stitched under.  Mirrors obs.SpanContext without importing
// it — pkg/api stays dependency-free.
type TraceContext struct {
	TraceID      string `json:"trace_id"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
}

// ChunkResult is the reply: the chunk's deterministic output.  Exactly one
// of (Rows+Agg) or Plans is populated, by job kind:
//
//   - census / epsilon / plansweep: Rows holds the chunk's NDJSON records
//     verbatim (identical bytes to a local run) and Agg the aggregate delta
//     of just this chunk (e.g. the census tally of one shard), which the
//     coordinator merges in index order — integer merges are associative, so
//     fold-of-deltas equals the sequential aggregate exactly.
//   - plancensus: Rows would not be portable (the chunk record and the
//     artifact records embed the cumulative string-section cursor), so the
//     worker returns one PlanEntry per shape in rank order and the
//     coordinator replays them into its own artifact builder, emitting the
//     chunk record itself.
type ChunkResult struct {
	Version int    `json:"version"`
	Chunk   int    `json:"chunk"`
	Shapes  uint64 `json:"shapes"`
	Rows    []byte `json:"rows,omitempty"`
	// Agg is the kind runner's aggregate snapshot over this chunk alone
	// (same encoding as the checkpoint aggregate); absent for stateless
	// kinds and for plancensus.
	Agg   json.RawMessage `json:"agg,omitempty"`
	Plans []PlanEntry     `json:"plans,omitempty"`
	// Span is the worker's obs.SpanJSON snapshot of this chunk's execution,
	// present only when the request carried a TraceContext.  It is opaque
	// bytes at this layer; the coordinator unmarshals and stitches it into
	// the job trace after validating its trace ID.
	Span json.RawMessage `json:"span,omitempty"`
}

// PlanEntry is one plancensus plan in a position-independent form: exactly
// the fields of an artifact record, minus the string-section offsets the
// coordinator's builder assigns on replay.  Kind is the plan-node wire name
// locked by enumgen (core.Kind).
type PlanEntry struct {
	Kind   string `json:"kind"`
	Method int    `json:"method"`
	// Dilation is the plan's a-priori dilation bound; -1 when unknown
	// (mirrors PlanRecord.DilationBound).
	Dilation int    `json:"dilation"`
	CubeDim  int    `json:"cube_dim"`
	Minimal  bool   `json:"minimal,omitempty"`
	Plan     string `json:"plan"`
}

// PeerState is a fabric peer's health as the coordinator sees it.
type PeerState string

const (
	PeerUp   PeerState = "up"
	PeerDown PeerState = "down"
)

// PeerStatus is one fabric peer's live status (GET /v1/peers, and the
// per-peer rows of a distributed job's JobStatus.Fabric block).
type PeerStatus struct {
	Addr  string    `json:"addr"`
	State PeerState `json:"state"`
	// InFlight is the number of chunks currently executing on the peer.
	InFlight int `json:"in_flight"`
	// Dispatched / Requeued / Failed are lifetime chunk counters for this
	// peer: executions started, chunks taken back after the peer failed, and
	// execution attempts that errored.
	Dispatched uint64 `json:"dispatched"`
	Requeued   uint64 `json:"requeued"`
	Failed     uint64 `json:"failed"`
	// LastError is the most recent failure observed on the peer ("" when
	// none); purely diagnostic.
	LastError string `json:"last_error,omitempty"`
}

// PeersResponse is the GET /v1/peers reply.
type PeersResponse struct {
	Version int          `json:"version"`
	Peers   []PeerStatus `json:"peers"`
}

// PeerJoinRequest is the POST /v1/peers body: a worker self-registering its
// advertised base URL with the coordinator (the -join flag).  Joining an
// already-known address re-dials it, so a restarted worker can rejoin under
// the same address.
type PeerJoinRequest struct {
	Addr string `json:"addr"`
}

// JobPeer is one peer's share of a running distributed job.
type JobPeer struct {
	Addr  string    `json:"addr"`
	State PeerState `json:"state"`
	// InFlight are the chunk indexes currently executing on this peer, in
	// ascending order.
	InFlight []int `json:"in_flight,omitempty"`
	// Done counts chunks this peer completed for this job.
	Done uint64 `json:"done"`
}

// FabricProgress is the distributed-dispatch block of a running distributed
// job's status.
type FabricProgress struct {
	// Peers lists every peer the dispatcher considered, with its current
	// chunk assignment.
	Peers []JobPeer `json:"peers"`
	// Requeued counts chunks re-dispatched after a peer failure (each is
	// still folded exactly once).
	Requeued uint64 `json:"requeued"`
}
