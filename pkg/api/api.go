// Package api defines the versioned wire types of the embedding service's
// /v1 HTTP API: every request and response body, the uniform JSON error
// envelope, and the batch-job subsystem's submit/status/record schema.
//
// The package is the single source of truth for the wire format.  The
// server (internal/server) serves exactly these types, the Go client SDK
// (pkg/client) decodes into them, and the golden-file round-trip tests in
// this package pin the encoded form so accidental schema breaks fail in CI
// rather than in production.
//
// Versioning: Version is stamped on every response body (success and error
// alike).  Additive changes (new optional fields) keep the version; any
// change that re-types, renames or removes a served field must bump it.
// JobSchemaVersion covers the on-disk job artifacts (checkpoints, job
// state) and the NDJSON result records, which must stay stable across
// server restarts for resume to work.
package api

// Version is the wire schema version stamped on every v1 response body.
const Version = 1

// JobSchemaVersion is the schema version of the batch-job artifacts: the
// job-state and checkpoint files under the server's -data-dir and the
// NDJSON result records.  A server refuses to resume artifacts written
// under a different version.
const JobSchemaVersion = 1

// Metrics is the measured quality of one embedding.  It mirrors the
// metrics engine's result field-for-field (deliberately without JSON tags:
// schema v1 serves Go field names, and changing that is a version bump).
// Family names the guest family ("mesh", "torus", "cylinder", "tree");
// Wrap is kept as the historical torus marker.
type Metrics struct {
	Guest         string
	Family        string
	Wrap          bool
	CubeDim       int
	Expansion     float64
	Minimal       bool
	Dilation      int
	AvgDilation   float64
	Congestion    int
	AvgCongestion float64
	LoadFactor    int
}

// EmbeddingSerial is the serialized node map of an embedding (schema of
// internal/embed.Serial, version 1): host cube dimension and one host node
// per guest node in row-major guest order.
type EmbeddingSerial struct {
	Version int      `json:"version"`
	Guest   string   `json:"guest"`
	Family  string   `json:"family,omitempty"`
	Wrap    bool     `json:"wrap,omitempty"`
	Cube    int      `json:"cube"`
	Map     []uint64 `json:"map"`
}

// SimRoundStats is one simulated store-and-forward stencil-exchange round
// (mirrors internal/simnet.RoundStats; no tags — Go field names on the
// wire, schema v1).
type SimRoundStats struct {
	Messages  int
	TotalHops int
	MaxHops   int
	Makespan  int
	MaxLink   int
	AvgHops   float64
}

// PlanRequest is the POST /v1/plan body.  Family selects the guest family
// registered in the topology registry — "mesh" (the default when the field
// is empty or absent, so pre-family clients are unaffected), "torus",
// "cylinder" (wraparound on the last axis only) or "tree" (shape 2^h−1
// read as the complete binary tree).
type PlanRequest struct {
	Shape  string `json:"shape"`
	Family string `json:"family,omitempty"`
}

// PlanResponse is the /v1/plan reply.  Source reports which tier of the
// server's plan hierarchy produced the result: "cache" (the in-memory L0
// result cache), "coalesced" (joined another request's in-flight
// computation), "closed_form" (the O(1) classifier proved the plan
// analytically), "artifact" (the precomputed plan-census artifact loaded
// with -plan-artifact) or "computed" (the full decomposition planner).
// /v1/embed and /v1/compare report only cache/coalesced/computed — their
// cost is dominated by building and measuring, not planning.
type PlanResponse struct {
	Version       int        `json:"version"`
	Shape         string     `json:"shape"`
	Family        string     `json:"family,omitempty"` // echoed guest family; empty means mesh
	Nodes         int        `json:"nodes"`
	CubeDim       int        `json:"cube_dim"`
	Plan          string     `json:"plan"`
	Method        int        `json:"method"`
	DilationBound int        `json:"dilation_bound"` // -1: no a-priori bound
	Source        string     `json:"source"`
	Debug         *DebugInfo `json:"debug,omitempty"`
}

// EmbedRequest is the POST /v1/embed body.  Mode selects the construction:
// "" or "decomposition" (the planner), "gray" (the baseline), "torus"
// (the historical spelling of Family "torus").  Family selects the guest
// family ("mesh" when empty; see PlanRequest.Family); it composes with the
// default mode and must agree with mode "torus" when both are given.
type EmbedRequest struct {
	Shape      string `json:"shape"`
	Family     string `json:"family,omitempty"`
	Mode       string `json:"mode,omitempty"`
	IncludeMap bool   `json:"include_map,omitempty"`
}

// EmbedResponse is the /v1/embed reply.
type EmbedResponse struct {
	Version       int              `json:"version"`
	Shape         string           `json:"shape"`
	Family        string           `json:"family,omitempty"` // echoed guest family; empty means mesh
	Mode          string           `json:"mode"`
	Plan          string           `json:"plan,omitempty"`
	Method        int              `json:"method,omitempty"`
	DilationBound int              `json:"dilation_bound,omitempty"`
	Metrics       Metrics          `json:"metrics"`
	Source        string           `json:"source"`
	Embedding     *EmbeddingSerial `json:"embedding,omitempty"`
	Debug         *DebugInfo       `json:"debug,omitempty"`
}

// CompareRequest is the POST /v1/compare body.  Family selects the guest
// family the techniques are measured under ("mesh" when empty; see
// PlanRequest.Family).
type CompareRequest struct {
	Shape  string `json:"shape"`
	Family string `json:"family,omitempty"`
	Simnet bool   `json:"simnet,omitempty"`
}

// CompareRow is one technique's measured quality.
type CompareRow struct {
	Technique string  `json:"technique"`
	Metrics   Metrics `json:"metrics"`
}

// CompareResponse is the /v1/compare reply.  Simnet, when requested, holds
// one deterministic store-and-forward stencil-exchange round per technique.
type CompareResponse struct {
	Version int                      `json:"version"`
	Shape   string                   `json:"shape"`
	Family  string                   `json:"family,omitempty"` // echoed guest family; empty means mesh
	Rows    []CompareRow             `json:"rows"`
	Simnet  map[string]SimRoundStats `json:"simnet,omitempty"`
	Source  string                   `json:"source"`
	Debug   *DebugInfo               `json:"debug,omitempty"`
}

// HealthzResponse is the GET /healthz reply.
type HealthzResponse struct {
	Status  string `json:"status"`
	Version int    `json:"version"`
}
