// Package api defines the versioned wire types of the embedding service's
// /v1 HTTP API: every request and response body, the uniform JSON error
// envelope, and the batch-job subsystem's submit/status/record schema.
//
// The package is the single source of truth for the wire format.  The
// server (internal/server) serves exactly these types, the Go client SDK
// (pkg/client) decodes into them, and the golden-file round-trip tests in
// this package pin the encoded form so accidental schema breaks fail in CI
// rather than in production.
//
// Versioning: Version is stamped on every response body (success and error
// alike).  Additive changes (new optional fields) keep the version; any
// change that re-types, renames or removes a served field must bump it.
// JobSchemaVersion covers the on-disk job artifacts (checkpoints, job
// state) and the NDJSON result records, which must stay stable across
// server restarts for resume to work.
package api

import "fmt"

// Version is the wire schema version stamped on every v1 response body.
// Schema v2: responses carry optimality certificates and wirelength, the
// guest family echo is always the canonical name ("mesh" included), and
// /v1/embed's mode "torus" is deprecated in favor of family "torus"
// (still accepted; the response carries a deprecation note and the
// normalized mode).  v1 request bodies remain accepted unchanged.
const Version = 2

// JobSchemaVersion is the schema version of the batch-job artifacts: the
// job-state and checkpoint files under the server's -data-dir and the
// NDJSON result records.  A server refuses to resume artifacts written
// under a different version.  Schema 2 adds the certificate columns
// (wirelength, lower bounds, gap/optimal) to plansweep and census rows and
// stamps SummaryRecord.Schema; every v2 field is additive and optional, so
// v1 result files still decode (see pkg/client.DecodeRecords) — a missing
// Schema stamp identifies a pre-certificate row.
const JobSchemaVersion = 2

// Metrics is the measured quality of one embedding.  It mirrors the
// metrics engine's result field-for-field.  The JSON tags declare the
// historical schema-v1 wire bytes (Go field names, pinned by the golden
// files) explicitly; Wirelength (schema v2) is the total routed path
// length, Σ per-edge dilation.  Family names the guest family ("mesh",
// "torus", "cylinder", "tree"); Wrap is kept as the historical torus
// marker.
type Metrics struct {
	Guest         string  `json:"Guest"`
	Family        string  `json:"Family"`
	Wrap          bool    `json:"Wrap"`
	CubeDim       int     `json:"CubeDim"`
	Expansion     float64 `json:"Expansion"`
	Minimal       bool    `json:"Minimal"`
	Dilation      int     `json:"Dilation"`
	AvgDilation   float64 `json:"AvgDilation"`
	Wirelength    int64   `json:"Wirelength"`
	Congestion    int     `json:"Congestion"`
	AvgCongestion float64 `json:"AvgCongestion"`
	LoadFactor    int     `json:"LoadFactor"`
}

// LowerBounds are the certified per-shape floors no one-to-one embedding
// into the certificate's cube can beat (internal/bounds; Rajan et al.
// arXiv:1807.06787, Miller–Pritikin–Sudborough arXiv:1403.2749).
type LowerBounds struct {
	Dilation   int   `json:"dilation"`
	Wirelength int64 `json:"wirelength"`
	Congestion int   `json:"congestion"`
}

// Certificate reports how far an achieved (or planned) embedding is from
// provably optimal.  Each gap is achieved − lower bound for one measure;
// −1 marks a gap the endpoint cannot evaluate (e.g. /v1/plan knows the
// planned dilation but has not routed, so wirelength and congestion are
// unknown).  GapToOptimal is the sum of the known gaps, −1 when none is
// known.  Optimal is true only when every known gap is zero and at least
// one is known — the embedding provably cannot be improved on those
// measures in this cube.
type Certificate struct {
	CubeDim       int         `json:"cube_dim"`
	LowerBounds   LowerBounds `json:"lower_bounds"`
	DilationGap   int         `json:"dilation_gap"`
	WirelengthGap int64       `json:"wirelength_gap"`
	CongestionGap int         `json:"congestion_gap"`
	GapToOptimal  int64       `json:"gap_to_optimal"`
	Optimal       bool        `json:"optimal"`
}

// EmbeddingSerial is the serialized node map of an embedding (schema of
// internal/embed.Serial, version 1): host cube dimension and one host node
// per guest node in row-major guest order.
type EmbeddingSerial struct {
	Version int      `json:"version"`
	Guest   string   `json:"guest"`
	Family  string   `json:"family,omitempty"`
	Wrap    bool     `json:"wrap,omitempty"`
	Cube    int      `json:"cube"`
	Map     []uint64 `json:"map"`
}

// SimRoundStats is one simulated store-and-forward stencil-exchange round
// (mirrors internal/simnet.RoundStats).  The JSON tags declare the
// historical schema-v1 wire bytes — Go field names — explicitly.
type SimRoundStats struct {
	Messages  int     `json:"Messages"`
	TotalHops int     `json:"TotalHops"`
	MaxHops   int     `json:"MaxHops"`
	Makespan  int     `json:"Makespan"`
	MaxLink   int     `json:"MaxLink"`
	AvgHops   float64 `json:"AvgHops"`
}

// ModeTorusDeprecation is the deprecation note served when a request
// selects the guest via the historical mode "torus" instead of the
// canonical family field.
const ModeTorusDeprecation = `mode "torus" is deprecated: use "family": "torus" (the request was served as family torus, mode decomposition)`

// NormalizeFamily resolves the historical mode/family duality of
// /v1/embed into the canonical (family, mode) pair.  family is one of
// "", "mesh", "torus", "cylinder", "tree" ("" means mesh); mode is one of
// "", "decomposition", "gray", or the deprecated alias "torus".  It
// returns the canonical family name (never empty), the normalized mode
// ("decomposition" or "gray"), and a deprecation note when the request
// used a retired spelling.  Unknown modes and contradictory
// family/mode pairs are errors; unknown family names are left to the
// caller's family registry (only the known names participate in
// normalization).
func NormalizeFamily(family, mode string) (fam, normMode, deprecation string, err error) {
	fam = family
	if fam == "" {
		fam = "mesh"
	}
	switch mode {
	case "", "decomposition":
		normMode = "decomposition"
	case "gray":
		if fam != "mesh" {
			return "", "", "", fmt.Errorf("mode gray applies to the mesh family only (got %q)", family)
		}
		normMode = "gray"
	case "torus":
		if family != "" && fam != "torus" {
			return "", "", "", fmt.Errorf("mode torus conflicts with family %q", family)
		}
		fam = "torus"
		normMode = "decomposition"
		deprecation = ModeTorusDeprecation
	default:
		return "", "", "", fmt.Errorf("unknown mode %q (want decomposition, gray or torus)", mode)
	}
	return fam, normMode, deprecation, nil
}

// PlanRequest is the POST /v1/plan body.  Family selects the guest family
// registered in the topology registry — "mesh" (the default when the field
// is empty or absent, so pre-family clients are unaffected), "torus",
// "cylinder" (wraparound on the last axis only) or "tree" (shape 2^h−1
// read as the complete binary tree).
type PlanRequest struct {
	Shape  string `json:"shape"`
	Family string `json:"family,omitempty"`
}

// PlanResponse is the /v1/plan reply.  Source reports which tier of the
// server's plan hierarchy produced the result: "cache" (the in-memory L0
// result cache), "coalesced" (joined another request's in-flight
// computation), "closed_form" (the O(1) classifier proved the plan
// analytically), "artifact" (the precomputed plan-census artifact loaded
// with -plan-artifact) or "computed" (the full decomposition planner).
// /v1/embed and /v1/compare report only cache/coalesced/computed — their
// cost is dominated by building and measuring, not planning.
type PlanResponse struct {
	Version       int          `json:"version"`
	Shape         string       `json:"shape"`
	Family        string       `json:"family,omitempty"` // canonical guest family (always set since v2)
	Nodes         int          `json:"nodes"`
	CubeDim       int          `json:"cube_dim"`
	Plan          string       `json:"plan"`
	Method        int          `json:"method"`
	DilationBound int          `json:"dilation_bound"` // -1: no a-priori bound
	Certificate   *Certificate `json:"certificate,omitempty"`
	Source        string       `json:"source"`
	Debug         *DebugInfo   `json:"debug,omitempty"`
}

// EmbedRequest is the POST /v1/embed body.  Family selects the guest
// family ("mesh" when empty; see PlanRequest.Family).  Mode selects the
// construction: "" or "decomposition" (the planner) or "gray" (the
// mesh-only baseline).  Mode "torus" is a deprecated alias for
// Family "torus" — still accepted, normalized by NormalizeFamily, and
// answered with a deprecation note.
type EmbedRequest struct {
	Shape      string `json:"shape"`
	Family     string `json:"family,omitempty"`
	Mode       string `json:"mode,omitempty"`
	IncludeMap bool   `json:"include_map,omitempty"`
}

// EmbedResponse is the /v1/embed reply.  Mode is the normalized mode
// ("decomposition" or "gray") regardless of the request spelling;
// Deprecation is set when the request used a retired spelling.
type EmbedResponse struct {
	Version       int              `json:"version"`
	Shape         string           `json:"shape"`
	Family        string           `json:"family,omitempty"` // canonical guest family (always set since v2)
	Mode          string           `json:"mode"`
	Deprecation   string           `json:"deprecation,omitempty"`
	Plan          string           `json:"plan,omitempty"`
	Method        int              `json:"method,omitempty"`
	DilationBound int              `json:"dilation_bound,omitempty"`
	Metrics       Metrics          `json:"metrics"`
	Certificate   *Certificate     `json:"certificate,omitempty"`
	Source        string           `json:"source"`
	Embedding     *EmbeddingSerial `json:"embedding,omitempty"`
	Debug         *DebugInfo       `json:"debug,omitempty"`
}

// CompareRequest is the POST /v1/compare body.  Family selects the guest
// family the techniques are measured under ("mesh" when empty; see
// PlanRequest.Family).
type CompareRequest struct {
	Shape  string `json:"shape"`
	Family string `json:"family,omitempty"`
	Simnet bool   `json:"simnet,omitempty"`
}

// CompareRow is one technique's measured quality.
type CompareRow struct {
	Technique string  `json:"technique"`
	Metrics   Metrics `json:"metrics"`
}

// CompareResponse is the /v1/compare reply.  Simnet, when requested, holds
// one deterministic store-and-forward stencil-exchange round per technique.
// Certificate is evaluated at the minimal cube against the best metrics
// any minimal-cube row achieved (the Gray baseline may live in a larger
// cube; it never weakens the certificate).
type CompareResponse struct {
	Version     int                      `json:"version"`
	Shape       string                   `json:"shape"`
	Family      string                   `json:"family,omitempty"` // canonical guest family (always set since v2)
	Rows        []CompareRow             `json:"rows"`
	Certificate *Certificate             `json:"certificate,omitempty"`
	Simnet      map[string]SimRoundStats `json:"simnet,omitempty"`
	Source      string                   `json:"source"`
	Debug       *DebugInfo               `json:"debug,omitempty"`
}

// HealthzResponse is the GET /healthz reply.
type HealthzResponse struct {
	Status  string `json:"status"`
	Version int    `json:"version"`
}
