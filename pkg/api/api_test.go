package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenCases enumerates every wire type with a fully-populated value.  The
// golden files pin the encoded form: any accidental field rename, re-tag or
// re-type shows up as a byte diff here long before a client sees it.
func goldenCases() []struct {
	name  string
	value any
} {
	return []struct {
		name  string
		value any
	}{
		{"plan_request", PlanRequest{Shape: "5x6x7", Family: "cylinder"}},
		{"plan_response", PlanResponse{
			Version: Version, Shape: "5x6x7", Family: "cylinder", Nodes: 210, CubeDim: 8,
			Plan: "(5x3x1[direct] ⊗ 1x2x7[gray])", Method: 2, DilationBound: 2,
			// A plan-only certificate: dilation gap from the a-priori
			// bound, wirelength/congestion gaps unknown (−1) until built.
			Certificate: &Certificate{
				CubeDim:     8,
				LowerBounds: LowerBounds{Dilation: 1, Wirelength: 523, Congestion: 1},
				DilationGap: 1, WirelengthGap: -1, CongestionGap: -1,
				GapToOptimal: 1,
			},
			Source: "computed",
			Debug: &DebugInfo{
				RequestID: "ab12-000001",
				Trace:     json.RawMessage(`{"name":"request","start_unix_ns":1,"duration_ns":2}`),
				PlanTrace: json.RawMessage(`{"attempts":[]}`),
			},
		}},
		// Mode "torus" stays on the wire as a deprecated alias: the request
		// must keep decoding, and the response echoes the canonical family
		// with a deprecation note.
		{"embed_request", EmbedRequest{Shape: "6x10", Family: "torus", Mode: "torus", IncludeMap: true}},
		{"embed_response", EmbedResponse{
			Version: Version, Shape: "5x6x7", Family: "mesh", Mode: "decomposition",
			Plan: "(5x3x1[direct] ⊗ 1x2x7[gray])", Method: 2, DilationBound: 2,
			Metrics: Metrics{
				Guest: "5x6x7", Family: "mesh", CubeDim: 8, Expansion: 1.2190, Minimal: true,
				Dilation: 2, AvgDilation: 1.1034, Wirelength: 565, Congestion: 3, AvgCongestion: 1.4128,
				LoadFactor: 1,
			},
			Source: "cache",
			Certificate: &Certificate{
				CubeDim:     8,
				LowerBounds: LowerBounds{Dilation: 1, Wirelength: 523, Congestion: 1},
				DilationGap: 1, WirelengthGap: 42, CongestionGap: 2,
				GapToOptimal: 45,
			},
			Embedding: &EmbeddingSerial{
				Version: 1, Guest: "1x2", Cube: 1, Map: []uint64{0, 1},
			},
		}},
		{"embed_response_deprecated_mode", EmbedResponse{
			Version: Version, Shape: "6x10", Family: "torus", Mode: "decomposition",
			Plan: "(3x1[direct] ⊗ 2x10[gray])", Method: 2, DilationBound: 2,
			Metrics: Metrics{
				Guest: "6x10", Family: "torus", CubeDim: 6, Expansion: 1.0667, Minimal: true,
				Dilation: 2, AvgDilation: 1.1, Wirelength: 132, Congestion: 2, AvgCongestion: 0.6875,
				LoadFactor: 1,
			},
			Source:      "computed",
			Deprecation: ModeTorusDeprecation,
			Certificate: &Certificate{
				CubeDim:     6,
				LowerBounds: LowerBounds{Dilation: 1, Wirelength: 120, Congestion: 1},
				DilationGap: 1, WirelengthGap: 12, CongestionGap: 1,
				GapToOptimal: 14,
			},
		}},
		{"compare_request", CompareRequest{Shape: "12x20", Family: "torus", Simnet: true}},
		{"compare_response", CompareResponse{
			Version: Version, Shape: "12x20", Family: "mesh",
			Rows: []CompareRow{{
				Technique: "gray",
				Metrics:   Metrics{Guest: "12x20", Family: "mesh", CubeDim: 9, Expansion: 2.1333, Dilation: 1, AvgDilation: 1, Wirelength: 448, Congestion: 1, AvgCongestion: 1, LoadFactor: 1},
			}},
			// The comparison-wide certificate: best minimal-cube technique
			// on each measure against the floors.
			Certificate: &Certificate{
				CubeDim:     8,
				LowerBounds: LowerBounds{Dilation: 1, Wirelength: 448, Congestion: 1},
				DilationGap: 1, WirelengthGap: 12, CongestionGap: 1,
				GapToOptimal: 14,
			},
			Simnet: map[string]SimRoundStats{
				"gray": {Messages: 916, TotalHops: 916, MaxHops: 1, Makespan: 4, MaxLink: 4, AvgHops: 1},
			},
			Source: "computed",
		}},
		{"healthz_response", HealthzResponse{Status: "ok", Version: Version}},
		{"error_response", ErrorResponse{
			Version: Version,
			Error: &Error{
				Code: CodeOverCapacity, Message: "server at capacity",
				RetryAfterMS: 1000, RequestID: "ab12-000007",
			},
		}},
		{"job_submit_request", JobSubmitRequest{
			Kind: JobCensus, Workers: 8, Census: &CensusParams{MaxN: 9},
		}},
		{"job_submit_request_plansweep", JobSubmitRequest{
			Kind: JobPlanSweep, PlanSweep: &PlanSweepParams{Dims: 3, MaxAxis: 16, MaxNodes: 4096, Family: "cylinder"},
		}},
		{"job_status", JobStatus{
			Version: Version, ID: "j-ab12cd34-000001", Kind: JobCensus, State: JobRunning,
			Progress: JobProgress{
				ChunksDone: 128, ChunksTotal: 512, Shapes: 33_554_432,
				ShapesPerSec: 1.5e6, ETAMS: 22_000, Retries: 1, ResultBytes: 40_960,
			},
			CreatedUnixMS: 1754300000000, StartedUnixMS: 1754300000100, Resumed: 1,
			Request: &JobSubmitRequest{Kind: JobCensus, Census: &CensusParams{MaxN: 9}},
		}},
		{"job_list_response", JobListResponse{
			Version: Version,
			Jobs: []JobStatus{{
				Version: Version, ID: "j-ab12cd34-000001", Kind: JobEpsilon, State: JobDone,
				Progress:      JobProgress{ChunksDone: 6, ChunksTotal: 6, Shapes: 299_593, ResultBytes: 1024},
				CreatedUnixMS: 1754300000000, StartedUnixMS: 1754300000100, FinishedUnixMS: 1754300002000,
				Request: &JobSubmitRequest{Kind: JobEpsilon, Epsilon: &EpsilonParams{MaxN: 6}},
			}},
		}},
		{"census_shard_record", CensusShardRecord{
			Type: RecordCensusShard, A: 5,
			Buckets: []CensusBucket{{N: 3, Count: [5]uint64{1, 0, 3, 0, 2}, Eps2: 5, Total: 6}},
		}},
		{"census_row_record", CensusRowRecord{
			Type: RecordCensusRow, N: 9, S: [4]float64{28.5, 81.5, 82.9, 96.1},
			S4Eps2: 99.5, Total: 134_217_728, Exceptions: 5_226_111,
			CertOptimalPct: 28.5,
		}},
		{"epsilon_row_record", EpsilonRowRecord{
			Type: RecordEpsilonRow, N: 6, Eps1: 95.7, Eps2: 4.0, Eps4: 0.3, EpsWorse: 0,
		}},
		{"plan_record", PlanRecord{
			Type: RecordPlan, Shape: "3x5x17", Family: "torus", Nodes: 255, CubeDim: 8,
			Plan: "snake(3x5x17)", Method: 0, DilationBound: -1, Minimal: true,
			BestMethod: 0, RelExpansion: []float64{1.6, 1.6, 1.6, 1},
			LowerBounds:  &LowerBounds{Dilation: 2, Wirelength: 680, Congestion: 1},
			GapToOptimal: -1,
		}},
		{"plan_record_optimal", PlanRecord{
			Type: RecordPlan, Shape: "4x4x4", Nodes: 64, CubeDim: 6,
			Plan: "4x4x4[gray]", Method: 1, DilationBound: 1, Minimal: true,
			BestMethod: 1, RelExpansion: []float64{1, 1, 1, 1},
			LowerBounds:  &LowerBounds{Dilation: 1, Wirelength: 144, Congestion: 1},
			GapToOptimal: 0, Optimal: true,
		}},
		{"summary_record", SummaryRecord{
			Type: RecordSummary, Schema: JobSchemaVersion, Kind: JobPlanSweep, Chunks: 16, Shapes: 688,
			DilationHist: map[string]uint64{"1": 120, "2": 560, "unknown": 8},
			Minimal:      610, Optimal: 120,
		}},
		{"summary_record_census", SummaryRecord{
			Type: RecordSummary, Kind: JobCensus, Chunks: 512, Shapes: 134_217_728,
			Exceptions: 5_226_111,
		}},
	}
}

// TestGoldenRoundTrip pins the JSON wire format of every api type: the
// encoded bytes must match the checked-in golden file, and decoding the
// golden file and re-encoding it must reproduce it byte-for-byte (catching
// asymmetric or shadowed tags).  Regenerate with `go test ./pkg/api -update`.
func TestGoldenRoundTrip(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.MarshalIndent(tc.value, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}

			// Round-trip: golden → value → bytes must be stable.
			fresh := reflect.New(reflect.TypeOf(tc.value))
			if err := json.Unmarshal(want, fresh.Interface()); err != nil {
				t.Fatalf("golden does not decode: %v", err)
			}
			again, err := json.MarshalIndent(fresh.Elem().Interface(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			again = append(again, '\n')
			if !bytes.Equal(again, want) {
				t.Errorf("decode/re-encode is not a fixed point:\n--- re-encoded ---\n%s\n--- golden ---\n%s", again, want)
			}
		})
	}
}

// TestNormalizeFamily pins the family/mode normalization table: the mode
// axis carries only the construction ("decomposition" or "gray"), the
// family axis only the guest topology, and the one retired spelling (mode
// "torus") maps onto the family axis with a deprecation note.
func TestNormalizeFamily(t *testing.T) {
	cases := []struct {
		family, mode         string
		wantFam, wantMode    string
		wantDeprecation, err bool
	}{
		{"", "", "mesh", "decomposition", false, false},
		{"", "decomposition", "mesh", "decomposition", false, false},
		{"", "gray", "mesh", "gray", false, false},
		{"mesh", "gray", "mesh", "gray", false, false},
		{"torus", "", "torus", "decomposition", false, false},
		{"cylinder", "decomposition", "cylinder", "decomposition", false, false},
		{"tree", "", "tree", "decomposition", false, false},
		// The deprecated alias: mode "torus" selects family torus.
		{"", "torus", "torus", "decomposition", true, false},
		{"torus", "torus", "torus", "decomposition", true, false},
		// Contradictions and unknowns are rejected.
		{"mesh", "torus", "", "", false, true},
		{"tree", "gray", "", "", false, true},
		{"", "zigzag", "", "", false, true},
	}
	for _, tc := range cases {
		fam, mode, deprecation, err := NormalizeFamily(tc.family, tc.mode)
		if tc.err {
			if err == nil {
				t.Errorf("NormalizeFamily(%q, %q): no error", tc.family, tc.mode)
			}
			continue
		}
		if err != nil {
			t.Errorf("NormalizeFamily(%q, %q): %v", tc.family, tc.mode, err)
			continue
		}
		if fam != tc.wantFam || mode != tc.wantMode || (deprecation != "") != tc.wantDeprecation {
			t.Errorf("NormalizeFamily(%q, %q) = (%q, %q, dep=%v), want (%q, %q, dep=%v)",
				tc.family, tc.mode, fam, mode, deprecation != "",
				tc.wantFam, tc.wantMode, tc.wantDeprecation)
		}
	}
}

func TestJobStateTerminal(t *testing.T) {
	for state, want := range map[JobState]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCancelled: true,
	} {
		if got := state.Terminal(); got != want {
			t.Errorf("%s.Terminal() = %v, want %v", state, got, want)
		}
	}
}

func TestErrorString(t *testing.T) {
	e := &Error{Code: CodeTimeout, Message: "deadline exceeded", RequestID: "ab-1"}
	if got := e.Error(); got != "timeout: deadline exceeded (request ab-1)" {
		t.Errorf("Error() = %q", got)
	}
	e.RequestID = ""
	if got := e.Error(); got != "timeout: deadline exceeded" {
		t.Errorf("Error() = %q", got)
	}
}
