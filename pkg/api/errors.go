package api

import "fmt"

// ErrorCode classifies an API failure.  Codes are part of the wire schema:
// clients branch on them (the SDK retries over_capacity and queue_full,
// surfaces bad_request immediately), so renaming one is a version bump.
type ErrorCode string

const (
	// CodeBadRequest (400): malformed body, unparseable shape, unknown mode
	// or invalid job parameters.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeShapeTooLarge (422): the shape parses but exceeds the server's
	// node limit.
	CodeShapeTooLarge ErrorCode = "shape_too_large"
	// CodeNotFound (404): no such job.
	CodeNotFound ErrorCode = "not_found"
	// CodeNotReady (409): the requested job output (a plancensus artifact)
	// does not exist yet because the job has not finished; retry after
	// RetryAfterMS or poll the job status.
	CodeNotReady ErrorCode = "not_ready"
	// CodeOverCapacity (429): the concurrency limiter shed the request;
	// retry after RetryAfterMS.
	CodeOverCapacity ErrorCode = "over_capacity"
	// CodeQueueFull (429): the bounded job queue is full; the job was NOT
	// accepted, so resubmitting after RetryAfterMS is safe.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeUnauthorized (401): the fabric shared secret is missing or wrong
	// on an internal endpoint (chunk execution, peer join).  Never retried.
	CodeUnauthorized ErrorCode = "unauthorized"
	// CodeTimeout (504): the per-request deadline expired.  The computation
	// keeps running detached and lands in the result cache, so a retry
	// after RetryAfterMS is usually a cache hit.
	CodeTimeout ErrorCode = "timeout"
	// CodeCanceled (499): the client closed the request.
	CodeCanceled ErrorCode = "canceled"
	// CodeUnavailable (503): the subsystem is not configured or is
	// draining (e.g. jobs endpoints on a server started without -data-dir).
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInternal (500): unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// Error is the one typed error envelope every endpoint uses for every
// non-2xx response, wrapped in ErrorResponse on the wire.  RetryAfterMS,
// when set, mirrors the Retry-After header in milliseconds; RequestID, when
// set, matches the X-Request-Id header and the server's access-log record
// so failures are correlatable with logs and traces.
type Error struct {
	Code         ErrorCode `json:"code"`
	Message      string    `json:"message"`
	RetryAfterMS int64     `json:"retry_after_ms,omitempty"`
	RequestID    string    `json:"request_id,omitempty"`
}

// Error implements the error interface so a decoded envelope can flow
// through Go error handling unchanged.
func (e *Error) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("%s: %s (request %s)", e.Code, e.Message, e.RequestID)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Version int    `json:"version"`
	Error   *Error `json:"error"`
}
