// Package client is the Go SDK for the embedding service's /v1 HTTP API.
//
// It speaks exactly the wire types of pkg/api: requests are the api request
// structs, successes decode into the api response structs, and every
// non-2xx response surfaces as a *api.Error — callers branch on the typed
// code (errors.As) instead of parsing strings or status text.
//
// Retry policy: transient rejections — 429 over_capacity / queue_full and
// 503 unavailable — are retried with exponential backoff, honouring the
// server's Retry-After hint (header or retry_after_ms body field) when it
// is longer than the backoff step.  504 timeout is retried for idempotent
// GETs and for the compute endpoints, whose results land in the server's
// cache while the client waits, so the retry is usually a hit.  Everything
// else (400, 404, 422, 500) returns immediately.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/pkg/api"
)

// Client calls one embedding service.  The zero value is not usable; use
// New.  Client is immutable after New and safe for concurrent use.
type Client struct {
	base    string
	http    *http.Client
	retries int
	backoff time.Duration
	secret  string
	// sleep is swappable for tests; it must respect ctx cancellation.
	sleep func(ctx context.Context, d time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection
// pooling, TLS, proxies).  The default has no overall timeout — per-call
// deadlines belong to the caller's context.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithRetries bounds how many times a transient failure is retried
// (default 4; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base backoff delay, doubled per attempt (default
// 250ms).  The server's Retry-After hint overrides it when longer.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithSecret attaches the fabric shared secret to every request (the
// X-Fabric-Secret header).  Required for the internal endpoints — chunk
// execution and peer join; public endpoints ignore the header.
func WithSecret(s string) Option { return func(c *Client) { c.secret = s } }

// New returns a Client for the service at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		http:    &http.Client{},
		retries: 4,
		backoff: 250 * time.Millisecond,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryable reports whether a typed API error is worth retrying: the
// request was rejected without (or before) being processed, or the result
// is being computed and cached server-side.
func retryable(e *api.Error) bool {
	switch e.Code {
	case api.CodeOverCapacity, api.CodeQueueFull, api.CodeUnavailable, api.CodeTimeout:
		return true
	}
	return false
}

// transientDial reports whether a transport-level failure is worth retrying
// with the same backoff as a 429/503: connection refused (the peer is down
// or restarting — the fabric's worker-loss path) or connection reset (it
// died mid-request).  Both mean the request was not processed, so a resend
// is safe.  Context cancellation is never retried.
func transientDial(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// decodeError turns a non-2xx response into a *api.Error, tolerating
// non-envelope bodies (proxies, panics) by synthesizing one from the
// status.
func decodeError(resp *http.Response, body []byte) *api.Error {
	var env api.ErrorResponse
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		e := env.Error
		if e.RetryAfterMS == 0 {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				e.RetryAfterMS = int64(secs) * 1000
			}
		}
		return e
	}
	code := api.CodeInternal
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		code = api.CodeOverCapacity
	case http.StatusServiceUnavailable:
		code = api.CodeUnavailable
	case http.StatusGatewayTimeout:
		code = api.CodeTimeout
	case http.StatusBadRequest:
		code = api.CodeBadRequest
	case http.StatusNotFound:
		code = api.CodeNotFound
	}
	msg := strings.TrimSpace(string(body))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	if msg == "" {
		msg = resp.Status
	}
	return &api.Error{Code: code, Message: msg}
}

// do runs one API call with the retry policy and decodes a 2xx body into
// out (which may be nil to discard it).  body, when non-nil, is re-encoded
// per attempt — requests must stay resubmittable for retry to be sound,
// which the retried codes guarantee (the server rejected without side
// effects, or the call is idempotent).
func (c *Client) do(ctx context.Context, method, path string, hdr http.Header, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		if c.secret != "" {
			req.Header.Set(api.FabricSecretHeader, c.secret)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			// Transient dial failures (refused/reset) back off and retry
			// like a 429; anything else — including ctx causes — returns
			// unmasked.
			if attempt >= c.retries || !transientDial(err) {
				return err
			}
			if serr := c.sleep(ctx, delay); serr != nil {
				return err
			}
			delay *= 2
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if rerr != nil {
				return rerr
			}
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("client: decode %s response: %w", path, err)
			}
			return nil
		}
		apiErr := decodeError(resp, data)
		if attempt >= c.retries || !retryable(apiErr) {
			return apiErr
		}
		wait := delay
		if hint := time.Duration(apiErr.RetryAfterMS) * time.Millisecond; hint > wait {
			wait = hint
		}
		if err := c.sleep(ctx, wait); err != nil {
			return apiErr // the context died while backing off; report the API failure
		}
		delay *= 2
	}
}

// Healthz checks service liveness.
func (c *Client) Healthz(ctx context.Context) (*api.HealthzResponse, error) {
	var out api.HealthzResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Plan plans a shape without building the embedding.
func (c *Client) Plan(ctx context.Context, req api.PlanRequest) (*api.PlanResponse, error) {
	var out api.PlanResponse
	if err := c.do(ctx, http.MethodPost, "/v1/plan", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Embed plans, builds and measures one embedding.
func (c *Client) Embed(ctx context.Context, req api.EmbedRequest) (*api.EmbedResponse, error) {
	var out api.EmbedResponse
	if err := c.do(ctx, http.MethodPost, "/v1/embed", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compare measures one shape under every applicable technique.
func (c *Client) Compare(ctx context.Context, req api.CompareRequest) (*api.CompareResponse, error) {
	var out api.CompareResponse
	if err := c.do(ctx, http.MethodPost, "/v1/compare", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitJob submits a batch sweep and returns its accepted (queued)
// status.  A queue_full rejection is retried with backoff — the server
// guarantees a rejected submit had no side effects.
func (c *Client) SubmitJob(ctx context.Context, req api.JobSubmitRequest) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists every job the server knows, in creation order.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out api.JobListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// CancelJob cancels a job and returns its resulting status.
func (c *Client) CancelJob(ctx context.Context, id string) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResults opens the job's NDJSON result stream starting at byte offset
// (0 for the beginning).  The stream long-polls: it ends only when the job
// is terminal and fully delivered, the context is cancelled, or the
// connection drops.  The caller must Close the reader; to resume after a
// drop, pass the total byte count consumed so far as the new offset.
func (c *Client) JobResults(ctx context.Context, id string, offset int64) (io.ReadCloser, error) {
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/results", nil)
		if err != nil {
			return nil, err
		}
		if offset > 0 {
			req.Header.Set(api.ResultsOffsetHeader, strconv.FormatInt(offset, 10))
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if attempt >= c.retries || !transientDial(err) {
				return nil, err
			}
			if serr := c.sleep(ctx, delay); serr != nil {
				return nil, err
			}
			delay *= 2
			continue
		}
		if resp.StatusCode == http.StatusOK {
			return resp.Body, nil
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		apiErr := decodeError(resp, data)
		if attempt >= c.retries || !retryable(apiErr) {
			return nil, apiErr
		}
		wait := delay
		if hint := time.Duration(apiErr.RetryAfterMS) * time.Millisecond; hint > wait {
			wait = hint
		}
		if err := c.sleep(ctx, wait); err != nil {
			return nil, apiErr
		}
		delay *= 2
	}
}

// JobArtifact opens the plan-census artifact of a finished plancensus job
// as a download stream (the raw internal/artifact file bytes).  Before the
// job finishes the server answers 409 not_ready, returned as a *api.Error
// without retrying — poll with WatchJob first, or back off on the error's
// RetryAfterMS.  The caller must Close the reader.
func (c *Client) JobArtifact(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/artifact", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK {
		return resp.Body, nil
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return nil, decodeError(resp, data)
}

// ExecuteChunk runs exactly one chunk of a job spec on this server (the
// fabric worker endpoint, POST /v1/internal/chunks) and returns its
// deterministic output.  The server requires the fabric shared secret
// (WithSecret) and answers 503 unavailable when started without one.
// Chunk execution is side-effect free on the worker, so the usual retry
// policy (429/503 and transient dial failures) applies safely.
func (c *Client) ExecuteChunk(ctx context.Context, req api.ChunkRequest) (*api.ChunkResult, error) {
	var out api.ChunkResult
	if err := c.do(ctx, http.MethodPost, "/v1/internal/chunks", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Peers lists the coordinator's fabric peers with health and per-peer
// dispatch counters (GET /v1/peers).
func (c *Client) Peers(ctx context.Context) (*api.PeersResponse, error) {
	var out api.PeersResponse
	if err := c.do(ctx, http.MethodGet, "/v1/peers", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JoinPeer registers addr (a worker's advertised base URL) with the
// coordinator (POST /v1/peers, the -join handshake).  Requires the fabric
// secret; joining an already-known address re-dials it.
func (c *Client) JoinPeer(ctx context.Context, addr string) (*api.PeersResponse, error) {
	var out api.PeersResponse
	if err := c.do(ctx, http.MethodPost, "/v1/peers", nil, api.PeerJoinRequest{Addr: addr}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RawMetrics fetches the server's Prometheus text exposition verbatim —
// callers (embedctl bench) diff counters like embedserver_plan_tier_*_total
// across a run.
func (c *Client) RawMetrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp, data)
	}
	return string(data), nil
}

// WatchJob polls a job until it reaches a terminal state, invoking fn on
// every status observed (including the terminal one).  fn may be nil.  It
// returns the terminal status; the error reports polling failures, not job
// failure — inspect the returned state for that.
func (c *Client) WatchJob(ctx context.Context, id string, interval time.Duration, fn func(api.JobStatus)) (*api.JobStatus, error) {
	if interval <= 0 {
		interval = time.Second
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if fn != nil {
			fn(*st)
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, interval); err != nil {
			return nil, err
		}
	}
}
