package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
	"repro/pkg/api"
)

// newTestClient spins up a real Server (with an attached job manager) under
// httptest and returns an SDK client pointed at it, with sleeps shrunk so
// retry/watch tests run in milliseconds.
func newTestClient(t *testing.T, opts ...Option) (*Client, *server.Server) {
	t.Helper()
	s := server.New(server.Config{})
	m, err := jobs.Open(jobs.Config{
		DataDir: t.TempDir(),
		Planner: s.Planner(),
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	s.AttachJobs(m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := New(ts.URL, opts...)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d / 100):
			return nil
		}
	}
	return c, s
}

func TestClientRoundTrip(t *testing.T) {
	c, _ := newTestClient(t)
	ctx := context.Background()

	hz, err := c.Healthz(ctx)
	if err != nil || hz.Status != "ok" || hz.Version != api.Version {
		t.Fatalf("healthz: %+v, %v", hz, err)
	}

	plan, err := c.Plan(ctx, api.PlanRequest{Shape: "5x6x7"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.CubeDim != 8 || plan.Plan == "" {
		t.Fatalf("plan: %+v", plan)
	}

	emb, err := c.Embed(ctx, api.EmbedRequest{Shape: "5x6x7", IncludeMap: true})
	if err != nil {
		t.Fatal(err)
	}
	if emb.Metrics.CubeDim != 8 || emb.Embedding == nil || len(emb.Embedding.Map) != 210 {
		t.Fatalf("embed: %+v", emb)
	}

	cmp, err := c.Compare(ctx, api.CompareRequest{Shape: "3x5x7", Simnet: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) == 0 || len(cmp.Simnet) != len(cmp.Rows) {
		t.Fatalf("compare: %d rows, %d simnet entries", len(cmp.Rows), len(cmp.Simnet))
	}
}

// TestClientTypedErrors asserts every failing endpoint surfaces as a typed
// *api.Error with the right code, for each failure status the server emits.
func TestClientTypedErrors(t *testing.T) {
	c, _ := newTestClient(t, WithRetries(0))
	ctx := context.Background()

	cases := []struct {
		name string
		call func() error
		code api.ErrorCode
	}{
		{"bad shape", func() error {
			_, err := c.Plan(ctx, api.PlanRequest{Shape: "banana"})
			return err
		}, api.CodeBadRequest},
		{"too large", func() error {
			_, err := c.Plan(ctx, api.PlanRequest{Shape: "100000x100000x100000"})
			return err
		}, api.CodeShapeTooLarge},
		{"job not found", func() error {
			_, err := c.Job(ctx, "j-nope-000001")
			return err
		}, api.CodeNotFound},
		{"bad job params", func() error {
			_, err := c.SubmitJob(ctx, api.JobSubmitRequest{Kind: "census"})
			return err
		}, api.CodeBadRequest},
		{"unknown kind", func() error {
			_, err := c.SubmitJob(ctx, api.JobSubmitRequest{Kind: "mystery"})
			return err
		}, api.CodeBadRequest},
	}
	for _, tc := range cases {
		err := tc.call()
		var ae *api.Error
		if !errors.As(err, &ae) {
			t.Fatalf("%s: err %T %v is not *api.Error", tc.name, err, err)
		}
		if ae.Code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, ae.Code, tc.code)
		}
	}
}

// TestClientRetriesQueueFull verifies the backoff loop: a server that
// answers 429 queue_full (with a Retry-After hint) twice and then accepts
// must succeed through the SDK, and the hint must reach the sleep.
func TestClientRetriesQueueFull(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{
				Version: api.Version,
				Error:   &api.Error{Code: api.CodeQueueFull, Message: "full", RetryAfterMS: 1500},
			})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.JobStatus{Version: api.Version, ID: "j-x-000001", State: api.JobQueued})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	c := New(ts.URL, WithRetries(3), WithBackoff(10*time.Millisecond))
	c.sleep = func(ctx context.Context, d time.Duration) error { slept = append(slept, d); return nil }

	st, err := c.SubmitJob(context.Background(), api.JobSubmitRequest{Kind: api.JobCensus, Census: &api.CensusParams{MaxN: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j-x-000001" || calls.Load() != 3 {
		t.Fatalf("status %+v after %d calls", st, calls.Load())
	}
	// Both sleeps must honour the 1500ms body hint over the 10ms/20ms backoff.
	if len(slept) != 2 || slept[0] != 1500*time.Millisecond || slept[1] != 1500*time.Millisecond {
		t.Fatalf("slept %v, want two 1.5s waits", slept)
	}
}

// TestClientRetriesExhausted: a permanently-full queue yields the typed
// queue_full error after the configured attempts.
func TestClientRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{
			Version: api.Version,
			Error:   &api.Error{Code: api.CodeUnavailable, Message: "draining"},
		})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	_, err := c.Healthz(context.Background())
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestClientNonEnvelopeError: a proxy-style plain-text failure still comes
// back as a typed error, synthesized from the status code.
func TestClientNonEnvelopeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway or something", http.StatusNotFound)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(0))
	_, err := c.Healthz(context.Background())
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNotFound || ae.Message == "" {
		t.Fatalf("err = %v", err)
	}
}

// TestClientJobLifecycle drives submit → watch → results → cancel-noop
// against the real server and checks the streamed records parse.
func TestClientJobLifecycle(t *testing.T) {
	c, _ := newTestClient(t)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, api.JobSubmitRequest{Kind: api.JobCensus, Census: &api.CensusParams{MaxN: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	fin, err := c.WatchJob(ctx, st.ID, time.Millisecond, func(api.JobStatus) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobDone || seen == 0 {
		t.Fatalf("watch: %+v after %d observations", fin, seen)
	}
	if fin.Progress.Shapes != 1<<9 {
		t.Fatalf("shapes = %d", fin.Progress.Shapes)
	}

	list, err := c.Jobs(ctx)
	if err != nil || len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("jobs list: %+v, %v", list, err)
	}

	rc, err := c.JobResults(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	full, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	var lines, summaries int
	sc := bufio.NewScanner(bytes.NewReader(full))
	for sc.Scan() {
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &disc); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines++
		if disc.Type == api.RecordSummary {
			summaries++
		}
	}
	if lines == 0 || summaries != 1 {
		t.Fatalf("stream: %d lines, %d summaries", lines, summaries)
	}

	// Offset resume returns the exact suffix.
	off := int64(len(full) / 3)
	rc2, err := c.JobResults(ctx, st.ID, off)
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	tail, err := io.ReadAll(rc2)
	if err != nil {
		t.Fatal(err)
	}
	if string(tail) != string(full[off:]) {
		t.Fatalf("resume at %d: got %d bytes, want %d", off, len(tail), int64(len(full))-off)
	}
}

// TestClientCancelJob cancels a queued job through the SDK.
func TestClientCancelJob(t *testing.T) {
	c, _ := newTestClient(t)
	ctx := context.Background()
	st, err := c.SubmitJob(ctx, api.JobSubmitRequest{Kind: api.JobCensus, Census: &api.CensusParams{MaxN: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.WatchJob(ctx, st.ID, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobCancelled {
		t.Fatalf("state = %s", fin.State)
	}
}
