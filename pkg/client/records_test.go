package client

import (
	"errors"
	"strings"
	"testing"

	"repro/pkg/api"
)

// schema-1 rows, verbatim from a pre-certificate server: no wirelength, no
// lower_bounds/gap_to_optimal/optimal, no cert_optimal_pct, no summary
// schema stamp.  DecodeRecords must still parse them.
const v1Stream = `{"type":"census_row","n":6,"s":[39.0625,62.5,75,100],"s4_eps2":100,"total":262144,"exceptions":0}
{"type":"plan","shape":"5x6x7","nodes":210,"cube_dim":8,"plan":"(5x3x1[direct] ⊗ 1x2x7[gray])","method":2,"dilation_bound":2,"minimal":true}
{"type":"summary","kind":"plansweep","chunks":16,"shapes":814,"minimal":814}
`

func TestDecodeRecordsSchema1(t *testing.T) {
	var kinds []string
	err := DecodeRecords(strings.NewReader(v1Stream), func(rec any) error {
		switch r := rec.(type) {
		case *api.CensusRowRecord:
			kinds = append(kinds, "census_row")
			if r.N != 6 || r.CertOptimalPct != 0 {
				t.Errorf("census row: %+v", r)
			}
		case *api.PlanRecord:
			kinds = append(kinds, "plan")
			if r.LowerBounds != nil {
				t.Errorf("schema-1 plan row decoded with lower bounds: %+v", r)
			}
			if r.Shape != "5x6x7" || r.DilationBound != 2 {
				t.Errorf("plan row: %+v", r)
			}
		case *api.SummaryRecord:
			kinds = append(kinds, "summary")
			if r.Schema != 0 {
				t.Errorf("schema-1 summary carries a schema stamp: %+v", r)
			}
		default:
			t.Errorf("unexpected record %T", rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 3 {
		t.Fatalf("decoded %v", kinds)
	}
}

// Schema-2 rows round-trip with the certificate columns populated.
func TestDecodeRecordsSchema2(t *testing.T) {
	stream := `{"type":"plan","shape":"4x4x4","nodes":64,"cube_dim":6,"plan":"4x4x4[gray]","method":1,"dilation_bound":1,"minimal":true,"lower_bounds":{"dilation":1,"wirelength":144,"congestion":1},"gap_to_optimal":0,"optimal":true}
{"type":"summary","schema":2,"kind":"plansweep","chunks":4,"shapes":1,"minimal":1,"optimal":1}
`
	seenPlan := false
	err := DecodeRecords(strings.NewReader(stream), func(rec any) error {
		if r, ok := rec.(*api.PlanRecord); ok {
			seenPlan = true
			if r.LowerBounds == nil || r.LowerBounds.Wirelength != 144 || !r.Optimal || r.GapToOptimal != 0 {
				t.Errorf("plan row: %+v bounds %+v", r, r.LowerBounds)
			}
		}
		if r, ok := rec.(*api.SummaryRecord); ok && (r.Schema != 2 || r.Optimal != 1) {
			t.Errorf("summary: %+v", r)
		}
		return nil
	})
	if err != nil || !seenPlan {
		t.Fatalf("err=%v seenPlan=%v", err, seenPlan)
	}
}

func TestDecodeRecordsRejectsUnknownType(t *testing.T) {
	err := DecodeRecords(strings.NewReader(`{"type":"from_the_future"}`+"\n"), func(any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown record type") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeRecordsStopsOnCallbackError(t *testing.T) {
	sentinel := errors.New("stop")
	n := 0
	err := DecodeRecords(strings.NewReader(v1Stream), func(any) error { n++; return sentinel })
	if !errors.Is(err, sentinel) || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}
