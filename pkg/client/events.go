package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/pkg/api"
)

// Live job streaming over server-sent events (GET /v1/jobs/{id}/events).
//
// The SSE stream carries the same committed-offset protocol as the NDJSON
// results download: every "row" event is one result line and its id is the
// byte offset just past that line, so Event.ID of the last row consumed is
// exactly the offset to resume from — on this endpoint (as Last-Event-ID)
// or on JobResults.  "progress", "fabric" and "done" events interleave with
// the rows and carry no id.

// JobEvent is one server-sent event from the live job stream.
type JobEvent struct {
	// Type is "row", "progress", "fabric" or "done".
	Type string
	// ID is the result-stream byte offset after this row, or -1 for the
	// id-less event types.
	ID int64
	// Data is the event payload: a result NDJSON line (row), an
	// api.JobStatus (progress, done), or an api.FabricStatus (fabric).
	Data []byte
}

// EventStream is an open SSE connection.  Not safe for concurrent use.
type EventStream struct {
	body io.ReadCloser
	br   *bufio.Reader
	// lastRow tracks the byte offset of the last row event returned, for
	// resuming after a drop (starts at the connect offset).
	lastRow int64
}

// JobEvents opens the live event stream for a job from the given result
// byte offset (0 for the beginning).  With rows=false the server omits row
// events — the cheap mode for progress watching.  The stream ends (Next
// returns io.EOF) after the "done" event, or earlier if the server drops a
// slow consumer; resume by reconnecting from LastRowID.
func (c *Client) JobEvents(ctx context.Context, id string, offset int64, rows bool) (*EventStream, error) {
	path := "/v1/jobs/" + id + "/events"
	if !rows {
		path += "?rows=off"
	}
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Accept", "text/event-stream")
		if offset > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatInt(offset, 10))
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if attempt >= c.retries || !transientDial(err) {
				return nil, err
			}
			if serr := c.sleep(ctx, delay); serr != nil {
				return nil, err
			}
			delay *= 2
			continue
		}
		if resp.StatusCode == http.StatusOK {
			return &EventStream{body: resp.Body, br: bufio.NewReader(resp.Body), lastRow: offset}, nil
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		apiErr := decodeError(resp, data)
		if attempt >= c.retries || !retryable(apiErr) {
			return nil, apiErr
		}
		wait := delay
		if hint := time.Duration(apiErr.RetryAfterMS) * time.Millisecond; hint > wait {
			wait = hint
		}
		if err := c.sleep(ctx, wait); err != nil {
			return nil, apiErr
		}
		delay *= 2
	}
}

// Next returns the next event.  io.EOF means the server closed the stream —
// after "done" that is the normal end; without one it was a drop, and the
// caller should reconnect from LastRowID.
func (s *EventStream) Next() (*JobEvent, error) {
	ev := &JobEvent{ID: -1}
	var data []byte
	seen := false
	for {
		line, err := s.br.ReadBytes('\n')
		if err != nil {
			if err == io.EOF && len(bytes.TrimSpace(line)) == 0 {
				return nil, io.EOF
			}
			return nil, err
		}
		line = bytes.TrimRight(line, "\r\n")
		switch {
		case len(line) == 0:
			if !seen {
				continue // stray blank (keep-alive), keep reading
			}
			ev.Data = data
			if ev.Type == "row" && ev.ID >= 0 {
				s.lastRow = ev.ID
			}
			return ev, nil
		case bytes.HasPrefix(line, []byte(":")):
			// comment / keep-alive
		case bytes.HasPrefix(line, []byte("event: ")):
			ev.Type, seen = string(line[len("event: "):]), true
		case bytes.HasPrefix(line, []byte("id: ")):
			id, perr := strconv.ParseInt(string(line[len("id: "):]), 10, 64)
			if perr != nil {
				return nil, fmt.Errorf("client: bad SSE id line %q", line)
			}
			ev.ID, seen = id, true
		case bytes.HasPrefix(line, []byte("data: ")):
			// Successive data lines join with \n per the SSE spec; the
			// server emits one per event, but parse the general form.
			if data != nil {
				data = append(data, '\n')
			}
			data = append(data, line[len("data: "):]...)
			seen = true
		}
	}
}

// LastRowID is the byte offset of the last row event consumed (or the
// connect offset if none) — the resume point after a dropped stream.
func (s *EventStream) LastRowID() int64 { return s.lastRow }

// Close releases the connection.
func (s *EventStream) Close() error { return s.body.Close() }

// WatchJobLive follows a job's status over the SSE stream (rows omitted),
// invoking fn on every progress update, and returns the terminal status.
// If the stream cannot be opened or dies before the job finishes — an older
// server, a proxy that buffers SSE — it degrades to the polling WatchJob
// with the given interval.  fn may be nil.
func (c *Client) WatchJobLive(ctx context.Context, id string, interval time.Duration, fn func(api.JobStatus)) (*api.JobStatus, error) {
	s, err := c.JobEvents(ctx, id, 0, false)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return c.WatchJob(ctx, id, interval, fn)
	}
	defer s.Close()
	for {
		ev, err := s.Next()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Stream ended without a done event (drop, proxy reset):
			// polling picks the watch back up.
			return c.WatchJob(ctx, id, interval, fn)
		}
		switch ev.Type {
		case "progress", "done":
			var st api.JobStatus
			if jerr := json.Unmarshal(ev.Data, &st); jerr != nil {
				return nil, fmt.Errorf("client: decode %s event: %w", ev.Type, jerr)
			}
			if fn != nil {
				fn(st)
			}
			if ev.Type == "done" || st.State.Terminal() {
				return &st, nil
			}
		}
	}
}

// JobTrace fetches a finished job's stitched span tree (the obs.SpanJSON
// root, covering coordinator and worker spans for a distributed run).  409
// not_ready until the run has written one.
func (c *Client) JobTrace(ctx context.Context, id string) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp, data)
	}
	return json.RawMessage(data), nil
}
