package client

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"syscall"
	"testing"
)

// flakyTransport fails the first `fails` round trips with err, then
// delegates to the real transport.  http.Client wraps the error in a
// *url.Error, which errors.Is unwraps — exactly what a refused dial to a
// restarting peer looks like.
type flakyTransport struct {
	inner http.RoundTripper
	err   error
	fails int

	mu    sync.Mutex
	calls int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.fails {
		return nil, f.err
	}
	return f.inner.RoundTrip(req)
}

func (f *flakyTransport) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// flakyClient is newTestClient with the transport replaced; the returned
// counter reports how many round trips were attempted.
func flakyClient(t *testing.T, err error, fails int, opts ...Option) (*Client, *flakyTransport) {
	t.Helper()
	c, _ := newTestClient(t, opts...)
	ft := &flakyTransport{inner: http.DefaultTransport, err: err, fails: fails}
	c.http = &http.Client{Transport: ft}
	return c, ft
}

// TestTransientDialRetried: connection-refused failures back off and retry
// until the peer answers — the path a fabric coordinator takes when a worker
// registers a moment before its listener accepts, or restarts between
// chunks.
func TestTransientDialRetried(t *testing.T) {
	for _, dialErr := range []error{syscall.ECONNREFUSED, syscall.ECONNRESET} {
		c, ft := flakyClient(t, dialErr, 2, WithRetries(4))
		hz, err := c.Healthz(context.Background())
		if err != nil {
			t.Fatalf("%v twice then up: %v", dialErr, err)
		}
		if hz.Status != "ok" {
			t.Fatalf("healthz after retry: %+v", hz)
		}
		if got := ft.count(); got != 3 {
			t.Fatalf("round trips = %d, want 3 (2 refused + 1 ok)", got)
		}
	}
}

// TestTransientDialExhausted: the retry budget bounds the attempts and the
// last dial error surfaces unmasked.
func TestTransientDialExhausted(t *testing.T) {
	c, ft := flakyClient(t, syscall.ECONNREFUSED, 100, WithRetries(2))
	_, err := c.Healthz(context.Background())
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want ECONNREFUSED", err)
	}
	if got := ft.count(); got != 3 {
		t.Fatalf("round trips = %d, want 3 (1 + 2 retries)", got)
	}
}

// TestNonTransientDialNotRetried: transport failures that do not look like
// a down peer (DNS, TLS, protocol errors) return immediately.
func TestNonTransientDialNotRetried(t *testing.T) {
	boom := errors.New("tls: handshake failure")
	c, ft := flakyClient(t, boom, 100, WithRetries(4))
	_, err := c.Healthz(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the handshake failure", err)
	}
	if got := ft.count(); got != 1 {
		t.Fatalf("round trips = %d, want 1 (no retry)", got)
	}
}

// TestCancelledDialNotRetried: context cancellation is never retried, even
// though it surfaces as a transport-level error.
func TestCancelledDialNotRetried(t *testing.T) {
	c, ft := flakyClient(t, context.Canceled, 100, WithRetries(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Healthz(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ft.count(); got > 1 {
		t.Fatalf("round trips = %d, want at most 1 (no retry)", got)
	}
}
