package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pkg/api"
)

// submitCensus submits a small census job and returns its id.
func submitCensus(t *testing.T, c *Client) string {
	t.Helper()
	st, err := c.SubmitJob(context.Background(), api.JobSubmitRequest{
		Kind:   api.JobCensus,
		Census: &api.CensusParams{MaxN: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// TestJobEventsStream: the SSE stream's row events reassemble into exactly
// the NDJSON results download, and the stream ends with a done event whose
// id-tracking makes resume offsets available.
func TestJobEventsStream(t *testing.T) {
	c, _ := newTestClient(t)
	ctx := context.Background()
	id := submitCensus(t, c)
	if st, err := c.WatchJob(ctx, id, time.Millisecond, nil); err != nil || st.State != api.JobDone {
		t.Fatalf("watch: %+v, %v", st, err)
	}
	rc, err := c.JobResults(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	ndjson, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}

	s, err := c.JobEvents(ctx, id, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var rows strings.Builder
	var sawDone, sawProgress bool
	for {
		ev, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if sawDone {
			t.Fatalf("event %q after done", ev.Type)
		}
		switch ev.Type {
		case "row":
			rows.Write(ev.Data)
			rows.WriteByte('\n')
			if ev.ID != int64(rows.Len()) {
				t.Fatalf("row id %d != %d bytes reassembled", ev.ID, rows.Len())
			}
		case "progress":
			sawProgress = true
		case "done":
			sawDone = true
			var st api.JobStatus
			if err := json.Unmarshal(ev.Data, &st); err != nil || st.State != api.JobDone {
				t.Fatalf("done event %s: %v", ev.Data, err)
			}
		}
	}
	if !sawDone || !sawProgress {
		t.Fatalf("stream done=%v progress=%v, want both", sawDone, sawProgress)
	}
	if rows.String() != string(ndjson) {
		t.Fatalf("rows differ from download (%d vs %d bytes)", rows.Len(), len(ndjson))
	}
	if s.LastRowID() != int64(len(ndjson)) {
		t.Fatalf("LastRowID = %d, want %d", s.LastRowID(), len(ndjson))
	}

	// Resume from midway: only the suffix arrives.
	mid := int64(0)
	for i, line := range strings.SplitAfter(string(ndjson), "\n") {
		if i == 0 {
			mid = int64(len(line))
		}
	}
	s2, err := c.JobEvents(ctx, id, mid, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var tail strings.Builder
	for {
		ev, err := s2.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == "row" {
			tail.Write(ev.Data)
			tail.WriteByte('\n')
		}
	}
	if tail.String() != string(ndjson[mid:]) {
		t.Fatalf("resumed rows differ from download suffix (%d vs %d bytes)", tail.Len(), len(ndjson)-int(mid))
	}
}

// TestWatchJobLive follows a job over SSE and sees the terminal status.
func TestWatchJobLive(t *testing.T) {
	c, _ := newTestClient(t)
	id := submitCensus(t, c)
	var updates int
	st, err := c.WatchJobLive(context.Background(), id, time.Millisecond, func(api.JobStatus) { updates++ })
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobDone {
		t.Fatalf("terminal state %s", st.State)
	}
	if updates == 0 {
		t.Fatal("no status updates observed")
	}
}

// TestWatchJobLiveFallback: when the events endpoint does not exist (older
// server), WatchJobLive silently degrades to polling.
func TestWatchJobLiveFallback(t *testing.T) {
	c, _ := newTestClient(t)
	id := submitCensus(t, c)
	inner := c.http.Transport
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			http.NotFound(w, r)
			return
		}
		r2, err := http.NewRequestWithContext(r.Context(), r.Method, c.base+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		tr := inner
		if tr == nil {
			tr = http.DefaultTransport
		}
		resp, err := tr.RoundTrip(r2)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)
	old := New(proxy.URL)
	old.sleep = c.sleep
	st, err := old.WatchJobLive(context.Background(), id, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobDone {
		t.Fatalf("terminal state %s", st.State)
	}
}

// TestJobTrace fetches the stitched span tree of a traced job run.
func TestJobTrace(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })
	c, _ := newTestClient(t)
	ctx := context.Background()
	id := submitCensus(t, c)
	if st, err := c.WatchJob(ctx, id, time.Millisecond, nil); err != nil || st.State != api.JobDone {
		t.Fatalf("watch: %+v, %v", st, err)
	}
	raw, err := c.JobTrace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var root obs.SpanJSON
	if err := json.Unmarshal(raw, &root); err != nil {
		t.Fatal(err)
	}
	if root.Name != "job" || root.TraceID == "" {
		t.Fatalf("trace root = %+v, want a job span with a trace id", root)
	}
}
