package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/pkg/api"
)

// DecodeRecords reads an NDJSON job-result stream (the body returned by
// JobResults) and calls fn with each decoded record: *api.CensusShardRecord,
// *api.CensusRowRecord, *api.EpsilonRowRecord, *api.PlanRecord,
// *api.PlanCensusChunkRecord or *api.SummaryRecord, switched on the
// record's "type" field.
//
// Decoding is schema-tolerant in the forward direction: every column added
// by a later JobSchemaVersion is optional, so result files written before
// the certificate columns (wirelength, lower_bounds, gap_to_optimal,
// optimal, cert_optimal_pct) decode with those fields at their zero
// values.  A schema-1 stream is recognizable by its summary record's
// missing Schema stamp (SummaryRecord.Schema == 0); on a PlanRecord, a nil
// LowerBounds marks a pre-certificate row (its GapToOptimal is then
// meaningless).  Unknown record types are an error — they signal a stream
// written by a *newer* schema than this client understands.
//
// fn returning an error stops the scan and returns that error.
func DecodeRecords(r io.Reader, fn func(rec any) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return fmt.Errorf("client: results line %d: %w", line, err)
		}
		var rec any
		switch head.Type {
		case api.RecordCensusShard:
			rec = new(api.CensusShardRecord)
		case api.RecordCensusRow:
			rec = new(api.CensusRowRecord)
		case api.RecordEpsilonRow:
			rec = new(api.EpsilonRowRecord)
		case api.RecordPlan:
			rec = new(api.PlanRecord)
		case api.RecordPlanCensusChunk:
			rec = new(api.PlanCensusChunkRecord)
		case api.RecordSummary:
			rec = new(api.SummaryRecord)
		default:
			return fmt.Errorf("client: results line %d: unknown record type %q", line, head.Type)
		}
		if err := json.Unmarshal(raw, rec); err != nil {
			return fmt.Errorf("client: results line %d (%s): %w", line, head.Type, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: results stream: %w", err)
	}
	return nil
}
